"""Benchmark: regenerate Table II (overall performance comparison, RQ1).

One benchmark per dataset so failures localize.  Shape assertions follow
EXPERIMENTS.md: KGAG is the strongest method on seed-averaged rec@5 on
every dataset (allowing a small tolerance at the quick profile, whose
single tiny seed is noisy), and on Yelp-like rec@5 == hit@5 for every
method.
"""

import pytest

from repro.experiments import TABLE2_MODELS, table2_overall

from conftest import run_once

# Ordering is only claimed at the calibrated profiles; the quick profile
# (one tiny seed, few epochs) regenerates the table but its orderings are
# noise, so there it only checks structural sanity.  At the default
# profile one test group is worth ~0.03, so the tolerance is one group.
TOLERANCE = {"default": 0.05, "full": 0.03}


@pytest.mark.parametrize("dataset", ["movielens-rand", "movielens-simi", "yelp"])
def test_table2_dataset(benchmark, profile, dataset):
    results = run_once(
        benchmark, table2_overall.run, profile, TABLE2_MODELS, (dataset,)
    )
    table = table2_overall.render(results, datasets=(dataset,))
    benchmark.extra_info["table"] = table
    print()
    print(table)

    for model in TABLE2_MODELS:
        cell = results[(model, dataset)]
        assert 0.0 <= cell.mean("rec@5") <= 1.0
        assert 0.0 <= cell.mean("hit@5") <= 1.0

    if profile.name in TOLERANCE:
        tolerance = TOLERANCE[profile.name]
        kgag = results[("KGAG", dataset)].mean("rec@5")
        for model in TABLE2_MODELS:
            if model == "KGAG":
                continue
            rival = results[(model, dataset)].mean("rec@5")
            assert kgag >= rival - tolerance, (
                f"KGAG ({kgag:.4f}) should not trail {model} ({rival:.4f}) on {dataset}"
            )

    if dataset == "yelp":
        for model in TABLE2_MODELS:
            cell = results[(model, dataset)]
            assert cell.mean("rec@5") == pytest.approx(cell.mean("hit@5"))
