"""Module / Parameter abstractions mirroring the familiar torch.nn API.

A :class:`Module` owns named :class:`Parameter` tensors and child modules,
supports recursive parameter iteration (for optimizers and L2 terms),
train/eval mode switching, and a flat ``state_dict`` for checkpointing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor, no_grad

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable tensor.

    Identical to :class:`Tensor` except ``requires_grad`` defaults to True
    and :class:`Module` auto-registers attributes of this type.
    """

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically.

    Examples
    --------
    >>> class Affine(Module):
    ...     def __init__(self):
    ...         super().__init__()
    ...         self.w = Parameter([[1.0]])
    ...     def forward(self, x):
    ...         return x @ self.w
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- attribute plumbing -------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        # Reassigning an attribute that previously held a Parameter/Module
        # must drop the old registration, otherwise the optimizer and
        # state_dict keep training/saving the orphan.
        parameters = self.__dict__.get("_parameters")
        modules = self.__dict__.get("_modules")
        if isinstance(value, Parameter):
            if modules is not None:
                modules.pop(name, None)
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            if parameters is not None:
                parameters.pop(name, None)
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        else:
            if parameters is not None:
                parameters.pop(name, None)
            if modules is not None:
                modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        """Explicitly register a parameter under ``name``."""
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    def register_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- iteration -----------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children."""
        for _, parameter in self.named_parameters():
            yield parameter

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, parameter in self._parameters.items():
            yield prefix + name, parameter
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- train / eval ----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. Dropout)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # -- gradients ----------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat mapping of qualified names to array copies."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays saved by :meth:`state_dict` (strict matching)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        with no_grad():
            for name, parameter in own.items():
                value = np.asarray(state[name])
                if value.shape != parameter.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"checkpoint {value.shape} vs parameter {parameter.shape}"
                    )
                parameter.data = value.astype(parameter.data.dtype).copy()

    # -- call protocol --------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
