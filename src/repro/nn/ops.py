"""Functional operations on :class:`~repro.nn.tensor.Tensor`.

These are the composite / multi-input operations that do not fit naturally
as ``Tensor`` methods: concatenation, stacking, stable softmax, pairwise
maximum, masked selection, and the embedding-style gather used throughout
the KGAG propagation code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor, as_tensor, unbroadcast

__all__ = [
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "softmax",
    "log_softmax",
    "masked_softmax",
    "exp",
    "log",
    "sigmoid",
    "tanh",
    "relu",
    "leaky_relu",
    "dot",
    "batched_dot",
    "gather_rows",
    "outer_ones",
]


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    return Tensor._make(out_data, tensors, backward)


def where(condition, a, b) -> Tensor:
    """Elementwise select: ``condition ? a : b``.

    ``condition`` is treated as a constant (no gradient flows through it).
    """
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    a = as_tensor(a)
    b = as_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * (~cond if cond.dtype == bool else 1 - cond), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def maximum(a, b) -> Tensor:
    """Elementwise maximum of two tensors (ties send gradient to ``a``)."""
    a = as_tensor(a)
    b = as_tensor(b)
    out_data = np.maximum(a.data, b.data)
    a_wins = a.data >= b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * a_wins, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * ~a_wins, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def minimum(a, b) -> Tensor:
    """Elementwise minimum of two tensors."""
    return -maximum(-as_tensor(a), -as_tensor(b))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        # d softmax: s * (grad - sum(grad * s))
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - inner))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax restricted to positions where ``mask`` is truthy.

    Masked-out positions receive probability exactly 0.  Rows whose mask is
    entirely false produce a zero row (not NaN), which downstream weighted
    sums treat as "no contribution".  Used for variable-size groups and
    variable-degree KG neighborhoods.
    """
    x = as_tensor(x)
    mask = np.asarray(mask, dtype=bool)
    neg_inf = np.finfo(x.data.dtype).min / 4
    masked = np.where(mask, x.data, neg_inf)
    shifted = masked - masked.max(axis=axis, keepdims=True)
    exps = np.exp(shifted) * mask
    denom = exps.sum(axis=axis, keepdims=True)
    safe_denom = np.where(denom == 0, 1.0, denom)
    out_data = exps / safe_denom

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - inner))

    return Tensor._make(out_data, (x,), backward)


def exp(x) -> Tensor:
    return as_tensor(x).exp()


def log(x) -> Tensor:
    return as_tensor(x).log()


def sigmoid(x) -> Tensor:
    return as_tensor(x).sigmoid()


def tanh(x) -> Tensor:
    return as_tensor(x).tanh()


def relu(x) -> Tensor:
    return as_tensor(x).relu()


def leaky_relu(x, negative_slope: float = 0.01) -> Tensor:
    """Leaky rectified linear unit."""
    x = as_tensor(x)
    out_data = np.where(x.data > 0, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * np.where(x.data > 0, 1.0, negative_slope))

    return Tensor._make(out_data, (x,), backward)


def dot(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise inner product of two ``(batch, d)`` tensors -> ``(batch,)``.

    This is the prediction-score primitive of the paper (Eqs. 14/15/19).
    """
    return (as_tensor(a) * as_tensor(b)).sum(axis=-1)


def batched_dot(a: Tensor, b: Tensor) -> Tensor:
    """Inner product along the last axis with broadcasting on the rest."""
    return (as_tensor(a) * as_tensor(b)).sum(axis=-1)


def gather_rows(table: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of a 2-D ``table`` by an integer index array.

    Result shape is ``indices.shape + (d,)``.  Backward scatter-adds, so
    repeated indices accumulate — the behaviour an ``Embedding`` needs.
    """
    indices = np.asarray(indices)
    if indices.dtype.kind not in "iu":
        raise TypeError("gather_rows requires integer indices")
    return table[indices]


def outer_ones(shape: tuple[int, ...]) -> Tensor:
    """Constant tensor of ones — occasionally useful as a mask seed."""
    return Tensor(np.ones(shape))
