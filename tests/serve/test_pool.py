"""ServingPool: pre-fork lifecycle, crash supervision, coordinated swap.

Satellite suite from the multi-process serving PR: worker crashes must
surface honestly in ``/healthz`` (and heal when respawn is on), the
pool-wide hot-swap must follow the verify -> all-ack -> retire protocol,
and ``close`` must never leak a worker process.  The in-process half of
the hot-swap protocol (``reload_index(drop_cache=False)`` + ``retire``)
is additionally hammered under the lockset race detector.
"""

import json
import multiprocessing
import os
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.analysis.racecheck import RaceDetector
from repro.serve import (
    EmbeddingIndex,
    RecommendationService,
    ServingPool,
    build_index,
    reuse_port_available,
)
from repro.serve.index import IndexError_

# Small per-worker stacks: tests run several pools on one core.
SERVICE_CONFIG = dict(
    cache_capacity=32, deadline_ms=None, batch_wait_ms=0.0, scorer_threads=2
)


def _get_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def _poll(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if predicate():
                return True
        except (urllib.error.URLError, ConnectionError, OSError):
            pass  # transient: a dying worker may reset a probe connection
        time.sleep(interval)
    return False


@pytest.fixture(scope="module")
def artifact(index, tmp_path_factory):
    return index.save(tmp_path_factory.mktemp("pool") / "index.npz")


@pytest.fixture(scope="module")
def swap_artifact(model, dataset, tmp_path_factory):
    # Same model, no seen-item mask -> different content fingerprint.
    swapped = build_index(model, user_interactions=dataset.user_item)
    return swapped.save(tmp_path_factory.mktemp("pool-swap") / "index2.npz")


def _pool(artifact, **overrides):
    options = dict(
        workers=2,
        monitor_interval=0.05,
        service_config=SERVICE_CONFIG,
    )
    options.update(overrides)
    return ServingPool(artifact, **options)


class TestServing:
    def test_pool_matches_single_process_answers(self, artifact, index):
        reference_service = RecommendationService(
            EmbeddingIndex.load(artifact, mmap=True), **SERVICE_CONFIG
        )
        try:
            reference = {
                group: reference_service.recommend(group, k=4)["items"]
                for group in range(index.num_groups)
            }
        finally:
            reference_service.close()
        with _pool(artifact) as pool:
            assert pool.version == index.version
            for group in range(index.num_groups):
                payload = _get_json(f"{pool.url}/recommend?group={group}&k=4")
                assert payload["index_version"] == index.version
                assert payload["items"] == reference[group], group

    def test_healthz_reports_pool_identity(self, artifact):
        with _pool(artifact) as pool:
            health = _get_json(f"{pool.url}/healthz")
            assert health["status"] == "ok"
            assert health["pool"]["workers"] == 2
            assert health["pool"]["alive"] == 2
            assert health["pool"]["worker"] in (0, 1)
            assert health["pool"]["pid"] in pool.worker_pids()

    def test_fallback_mode_without_reuseport_serves(self, artifact):
        # The shared pre-fork listener path must work everywhere, even
        # where SO_REUSEPORT exists.
        with _pool(artifact, reuse_port=False) as pool:
            payload = _get_json(f"{pool.url}/recommend?group=0&k=3")
            assert len(payload["items"]) == 3
            assert pool.alive_workers() == 2

    def test_aggregate_stats_merge_worker_counters(self, artifact):
        with _pool(artifact) as pool:
            for group in range(6):
                _get_json(f"{pool.url}/recommend?group={group}&k=2")
            stats = pool.stats()
            aggregate = stats["aggregate"]
            assert aggregate["workers"] == 2
            assert aggregate["responding"] == 2
            assert aggregate["requests"] == 6
            assert set(aggregate["latency_ms"]) == {"p50", "p95", "p99"}
            assert len(stats["per_worker"]) == 2
            assert aggregate["requests"] == sum(
                worker["stats"]["requests"] for worker in stats["per_worker"]
            )


class TestCrashSupervision:
    def test_crash_without_respawn_degrades_honestly(self, artifact):
        with _pool(artifact, respawn=False) as pool:
            pool.inject_crash(0)
            assert _poll(lambda: pool.alive_workers() == 1)

            def degraded():
                health = _get_json(f"{pool.url}/healthz")
                return (
                    health["status"] == "degraded"
                    and health["pool"]["alive"] == 1
                )

            assert _poll(degraded), "healthz never reported the dead worker"

    def test_crash_with_respawn_heals(self, artifact):
        with _pool(artifact) as pool:
            before = pool.worker_pids()
            pool.inject_crash(1)
            assert _poll(lambda: pool.respawns >= 1 and pool.alive_workers() == 2)
            after = pool.worker_pids()
            assert after[1] != before[1], "slot 1 was not respawned"
            assert after[0] == before[0], "the healthy worker was disturbed"

            def healthy():
                health = _get_json(f"{pool.url}/healthz")
                return health["status"] == "ok" and health["pool"]["alive"] == 2

            assert _poll(healthy), "healthz never recovered after the respawn"

    def test_respawned_worker_serves_current_index(
        self, artifact, swap_artifact, index
    ):
        swapped_version = EmbeddingIndex.load(swap_artifact).version
        with _pool(artifact) as pool:
            report = pool.reload(swap_artifact)
            assert report["new_version"] == swapped_version
            pool.inject_crash(0)
            assert _poll(lambda: pool.respawns >= 1 and pool.alive_workers() == 2)
            # Both workers — including the respawn — serve the new version.
            for _ in range(8):
                payload = _get_json(f"{pool.url}/recommend?group=0&k=2")
                assert payload["index_version"] == swapped_version


class TestHotSwap:
    def test_coordinated_swap_across_the_pool(self, artifact, swap_artifact, index):
        swapped_version = EmbeddingIndex.load(swap_artifact).version
        with _pool(artifact) as pool:
            # Warm both workers so version-keyed entries exist to retire.
            for group in range(index.num_groups):
                _get_json(f"{pool.url}/recommend?group={group}&k=2")
            report = pool.reload(swap_artifact)
            assert report["old_version"] == index.version
            assert report["new_version"] == swapped_version
            assert report["workers"] == 2
            assert report["cache_entries_retired"] >= 1
            payload = _get_json(f"{pool.url}/recommend?group=0&k=2")
            assert payload["index_version"] == swapped_version
            aggregate = pool.stats()["aggregate"]
            assert aggregate["index_version"] == swapped_version
            assert aggregate["index_swaps"] == 2
            # No worker kept stale old-version cache entries around.
            for worker in pool.stats()["per_worker"]:
                assert worker["stats"]["cache"]["retirements"] >= 0

    def test_corrupt_artifact_is_rejected_before_any_worker_maps_it(
        self, artifact, swap_artifact, index, tmp_path
    ):
        corrupt = tmp_path / "corrupt.npz"
        blob = bytearray(swap_artifact.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        corrupt.write_bytes(bytes(blob))
        with _pool(artifact) as pool:
            with pytest.raises(IndexError_):
                pool.reload(corrupt)
            # The fleet still serves the verified version.
            assert pool.version == index.version
            payload = _get_json(f"{pool.url}/recommend?group=0&k=2")
            assert payload["index_version"] == index.version

    def test_swap_under_concurrent_load(self, artifact, swap_artifact, index):
        swapped_version = EmbeddingIndex.load(swap_artifact).version
        valid = {index.version, swapped_version}
        errors, versions = [], set()
        with _pool(artifact) as pool:
            stop = threading.Event()

            def reader():
                group = 0
                while not stop.is_set():
                    try:
                        payload = _get_json(
                            f"{pool.url}/recommend?group={group % index.num_groups}&k=2"
                        )
                    except Exception as exc:  # noqa: BLE001 - for the assert
                        errors.append(exc)
                        return
                    versions.add(payload["index_version"])
                    group += 1

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                report = pool.reload(swap_artifact)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10.0)
            assert not errors, errors[:3]
            assert report["new_version"] == swapped_version
            # Every response carried a version that was legitimately
            # installed at some point — never a mix or a ghost.
            assert versions <= valid, versions - valid


class TestShutdown:
    def test_close_leaves_zero_worker_processes(self, artifact):
        pool = _pool(artifact)
        pids = pool.worker_pids()
        assert pool.alive_workers() == 2
        pool.close()
        pool.close()  # idempotent
        assert not multiprocessing.active_children()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_closed_pool_refuses_control_operations(self, artifact, swap_artifact):
        pool = _pool(artifact)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.stats()
        with pytest.raises(RuntimeError, match="closed"):
            pool.reload(swap_artifact)

    def test_reuse_port_probe_matches_platform(self):
        import socket

        assert reuse_port_available() == hasattr(socket, "SO_REUSEPORT")


class TestSwapRaceFreedom:
    """The worker-side swap protocol under the lockset race detector.

    Mirrors ``tests/stream/test_hot_swap.py`` but drives the *pool's*
    code path: ``reload_index(..., drop_cache=False)`` followed by a
    version-targeted ``cache.retire`` — old-version entries keep serving
    until the retire lands, and nothing races.
    """

    def test_reload_then_retire_is_race_free(self, model, dataset, split, index):
        other = build_index(model, user_interactions=dataset.user_item)
        indexes = [index, other]
        assert indexes[0].version != indexes[1].version
        service = RecommendationService(
            index, cache_capacity=64, deadline_ms=None, batch_wait_ms=0.1
        )
        valid = {ix.version for ix in indexes}
        errors = []
        num_readers = 6
        start = threading.Barrier(num_readers + 1)

        def reader(seed):
            rng = np.random.default_rng(seed)
            start.wait()
            for _ in range(120):
                group = int(rng.integers(dataset.groups.num_groups))
                try:
                    response = service.recommend(group, k=3)
                except Exception as exc:  # noqa: BLE001 - for the assert
                    errors.append(exc)
                    return
                if response["index_version"] not in valid:
                    errors.append(AssertionError(response["index_version"]))

        def swapper():
            start.wait()
            for i in range(20):
                nxt = indexes[(i + 1) % 2]
                old = service.index.version
                service.reload_index(nxt, drop_cache=False)
                service.cache.retire(old)

        with RaceDetector() as detector:
            detector.track(service)
            detector.track(service.cache)
            threads = [
                threading.Thread(target=reader, args=(200 + i,))
                for i in range(num_readers)
            ]
            threads.append(threading.Thread(target=swapper))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        try:
            assert not errors, errors[:3]
            assert not detector.violations, detector.violations
            stats = service.stats()
            assert stats["index"]["swaps"] == 20
            # Quiesced, run one deterministic reload-then-retire cycle:
            # the old-version entry survives the reload (drop_cache=False)
            # and is dropped — and counted — only by the targeted retire.
            old = service.index
            service.recommend(0, k=3)  # ensure an (0, old.version) entry
            nxt = indexes[0] if old is indexes[1] else indexes[1]
            service.reload_index(nxt, drop_cache=False)
            assert service.cache.get((0, old.version)) is not None
            before = service.cache.stats().retirements
            assert service.cache.retire(old.version) >= 1
            assert service.cache.stats().retirements > before
            live_version = service.index.version
            with service.cache._lock:
                stale = [
                    key
                    for key in service.cache._store
                    if key[1] != live_version
                ]
            assert not stale, stale
        finally:
            service.close()
