"""Tests for the fused hot-path autograd pieces of the training loop:

* :func:`repro.nn.ops.broadcast_to` / :func:`repro.nn.ops.tile` — the
  zero-copy replacements for the ``x * ones(shape)`` tiling idiom;
* :func:`repro.nn.ops.neighbor_scores` / :func:`repro.nn.ops.neighbor_mix`
  — the batched attention contractions of the propagation block;
* the segment-sum embedding scatter behind ``Tensor.__getitem__``'s
  backward (:func:`repro.nn.tensor._index_add`), including its dense
  bincount and sparse sort+reduceat strategies;
* the gradient-donation fast path (``_accumulate_exclusive``), pinned
  through aliasing-sensitive expression shapes like ``x + x``.
"""

import numpy as np
import pytest

from repro.nn import Tensor, ops
from repro.nn.gradcheck import check_gradients
from repro.nn.tensor import _index_add

RNG = np.random.default_rng(42)


def randt(*shape) -> Tensor:
    return Tensor(RNG.normal(size=shape), requires_grad=True)


class TestBroadcastTo:
    def test_forward_is_zero_copy_view(self):
        x = Tensor(RNG.normal(size=(3, 1, 4)))
        out = ops.broadcast_to(x, (2, 3, 5, 4))
        assert out.shape == (2, 3, 5, 4)
        assert out.data.base is x.data or out.data.base is x.data.base

    def test_matches_ones_multiply_bitwise(self):
        x = Tensor(RNG.normal(size=(4, 1)))
        via_ones = (x * np.ones((4, 6))).data
        via_broadcast = ops.broadcast_to(x, (4, 6)).data
        np.testing.assert_array_equal(via_broadcast, via_ones)

    def test_gradcheck(self):
        check_gradients(lambda t: ops.broadcast_to(t, (5, 3, 4)), [randt(3, 4)])
        check_gradients(lambda t: ops.broadcast_to(t, (2, 3, 6)), [randt(3, 1)])

    def test_backward_sums_repeats(self):
        x = randt(2, 1)
        ops.broadcast_to(x, (2, 5)).sum().backward()
        np.testing.assert_allclose(x.grad, [[5.0], [5.0]])


class TestTile:
    def test_matches_np_tile(self):
        x = Tensor(RNG.normal(size=(2, 3)))
        np.testing.assert_array_equal(
            ops.tile(x, (2, 2)).data, np.tile(x.data, (2, 2))
        )

    def test_gradcheck_non_unit_axes(self):
        # Repeats along existing non-unit axes — the case broadcast_to
        # cannot express.
        check_gradients(lambda t: ops.tile(t, (2, 3)), [randt(2, 2)])
        check_gradients(lambda t: ops.tile(t, 3), [randt(4)])

    def test_backward_counts_repeats(self):
        x = randt(3)
        ops.tile(x, 4).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 4.0, 4.0])


class TestNeighborContractions:
    def test_neighbor_scores_matches_mul_sum(self):
        rels, query = randt(5, 3, 4, 6), randt(5, 6)
        fused = ops.neighbor_scores(rels, query)
        loose = (rels * query.reshape(5, 1, 1, 6)).sum(axis=-1)
        np.testing.assert_allclose(fused.data, loose.data, atol=1e-12)

    def test_neighbor_mix_matches_mul_sum(self):
        weights, neighbors = randt(5, 3, 4), randt(5, 3, 4, 6)
        fused = ops.neighbor_mix(weights, neighbors)
        loose = (weights.reshape(5, 3, 4, 1) * neighbors).sum(axis=2)
        np.testing.assert_allclose(fused.data, loose.data, atol=1e-12)

    def test_neighbor_scores_gradcheck(self):
        check_gradients(
            lambda r, q: ops.neighbor_scores(r, q), [randt(3, 2, 4, 5), randt(3, 5)]
        )

    def test_neighbor_mix_gradcheck(self):
        check_gradients(
            lambda w, n: ops.neighbor_mix(w, n), [randt(3, 2, 4), randt(3, 2, 4, 5)]
        )


class TestSegmentSumScatter:
    """`_index_add` — the embedding scatter primitive."""

    def scatter(self, shape, key, grad):
        full = np.zeros(shape)
        _index_add(full, key, np.asarray(grad, dtype=np.float64))
        return full

    def test_repeated_indices_accumulate(self):
        key = np.array([2, 2, 0, 2])
        grad = np.ones((4, 3))
        out = self.scatter((4, 3), key, grad)
        np.testing.assert_allclose(out[2], [3.0, 3.0, 3.0])
        np.testing.assert_allclose(out[0], [1.0, 1.0, 1.0])
        np.testing.assert_allclose(out[[1, 3]], 0.0)

    def test_empty_batch_is_noop(self):
        out = self.scatter((5, 2), np.zeros(0, dtype=np.int64), np.zeros((0, 2)))
        np.testing.assert_array_equal(out, 0.0)

    def test_single_row(self):
        out = self.scatter((5, 2), np.array([3]), [[1.5, -2.0]])
        np.testing.assert_allclose(out[3], [1.5, -2.0])
        assert np.count_nonzero(out) == 2

    def test_negative_indices_wrap(self):
        out = self.scatter((4, 2), np.array([-1, -1]), np.ones((2, 2)))
        np.testing.assert_allclose(out[3], [2.0, 2.0])

    def test_dense_and_sparse_strategies_agree(self):
        # rows.size * 4 >= len(full) selects the bincount strategy; a
        # huge table with few rows selects sort+reduceat.  Same scatter
        # either way.
        rng = np.random.default_rng(0)
        key = rng.integers(0, 8, size=64)
        grad = rng.normal(size=(64, 3))
        dense = self.scatter((8, 3), key, grad)

        sparse = np.zeros((1024, 3))
        _index_add(sparse, key, grad)  # 64 * 4 < 1024 -> reduceat path
        np.testing.assert_allclose(dense, sparse[:8], atol=1e-12)
        np.testing.assert_array_equal(sparse[8:], 0.0)

    def test_multi_dim_key_and_grad(self):
        key = np.array([[0, 1], [1, 0]])
        grad = np.ones((2, 2, 3))
        out = self.scatter((3, 3), key, grad)
        np.testing.assert_allclose(out[0], [2.0, 2.0, 2.0])
        np.testing.assert_allclose(out[1], [2.0, 2.0, 2.0])

    def test_gather_backward_uses_scatter(self):
        table = Tensor(RNG.normal(size=(6, 4)), requires_grad=True)
        idx = np.array([1, 1, 5, 0, 1])
        table[idx].sum().backward()
        expected = np.zeros((6, 4))
        np.add.at(expected, idx, np.ones((5, 4)))
        np.testing.assert_allclose(table.grad, expected)

    def test_repeat_gathers_accumulate_across_calls(self):
        # Second gather scatters in place into the existing grad buffer
        # (the in-place fast path of __getitem__'s backward).
        table = Tensor(RNG.normal(size=(5, 2)), requires_grad=True)
        (table[np.array([0, 1])].sum() + table[np.array([1, 2])].sum()).backward()
        np.testing.assert_allclose(
            table.grad, [[1, 1], [2, 2], [1, 1], [0, 0], [0, 0]]
        )

    def test_gather_gradcheck(self):
        idx = np.array([0, 2, 2, 1])
        check_gradients(lambda t: t[idx], [randt(4, 3)])


class TestGradientDonation:
    """Aliasing-sensitive shapes for the grad-donation fast path."""

    def test_self_plus_self(self):
        x = randt(3)
        (x + x).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])

    def test_self_minus_self(self):
        x = randt(3)
        (x - x).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0, 0.0])

    def test_shared_subexpression(self):
        x = randt(4)
        y = x * 2.0
        (y + y.sigmoid()).sum().backward()
        expected = 2.0 + 2.0 * _dsigmoid(2.0 * x.data)
        np.testing.assert_allclose(x.grad, expected)

    def test_root_grad_not_aliased_by_parents(self):
        x = randt(3)
        out = x + 1.0
        out.backward(np.ones(3))
        assert out.grad is not x.grad
        out.grad[:] = 99.0
        np.testing.assert_allclose(x.grad, [1.0, 1.0, 1.0])

    def test_sum_backward_readonly_view_still_accumulates(self):
        # sum donates a read-only broadcast view; a second consumer must
        # fall back to out-of-place addition, not crash on the view.
        x = randt(2, 3)
        s = x.sum()
        (s + s).backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 2.0))

    def test_broadcast_grads_with_donation(self):
        a, b = randt(4, 3), randt(3)
        check_gradients(lambda u, v: u + v, [a, b])
        check_gradients(lambda u, v: u - v, [a, b])


def _dsigmoid(z):
    s = 1.0 / (1.0 + np.exp(-z))
    return s * (1.0 - s)
