"""Shared fixtures for the serving-layer tests: one tiny trained world."""

import numpy as np
import pytest

from repro.core import KGAG, KGAGConfig
from repro.data import MovieLensLikeConfig, movielens_like, split_interactions
from repro.serve import build_index


@pytest.fixture(scope="package")
def dataset():
    return movielens_like(
        "rand",
        MovieLensLikeConfig(num_users=36, num_items=48, num_groups=9, seed=11),
    )


@pytest.fixture(scope="package")
def split(dataset):
    return split_interactions(dataset.group_item, rng=np.random.default_rng(11))


@pytest.fixture(scope="package")
def model(dataset):
    return KGAG(
        dataset.kg,
        dataset.num_users,
        dataset.num_items,
        dataset.user_item.pairs,
        dataset.groups,
        KGAGConfig(embedding_dim=8, num_layers=2, num_neighbors=3, seed=11),
    )


@pytest.fixture(scope="package")
def index(model, dataset, split):
    return build_index(
        model, train_interactions=split.train, user_interactions=dataset.user_item
    )
