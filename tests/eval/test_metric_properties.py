"""Property-based tests (hypothesis) for ranking-metric invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.eval import hit_at_k, ndcg_at_k, precision_at_k, recall_at_k, top_k_items


@st.composite
def ranking_cases(draw):
    num_items = draw(st.integers(2, 30))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    scores = rng.normal(size=num_items)
    num_positives = draw(st.integers(1, num_items))
    positives = set(rng.choice(num_items, size=num_positives, replace=False).tolist())
    k = draw(st.integers(1, num_items))
    return scores, positives, k


@settings(max_examples=60, deadline=None)
@given(ranking_cases())
def test_metrics_bounded(case):
    scores, positives, k = case
    for metric in (hit_at_k, recall_at_k, precision_at_k, ndcg_at_k):
        value = metric(scores, positives, k)
        assert 0.0 <= value <= 1.0


@settings(max_examples=60, deadline=None)
@given(ranking_cases())
def test_hit_dominates_recall(case):
    """rec@k > 0 implies hit@k == 1; rec@k == 0 implies hit@k == 0."""
    scores, positives, k = case
    hit = hit_at_k(scores, positives, k)
    rec = recall_at_k(scores, positives, k)
    assert (rec > 0) == (hit == 1.0)


@settings(max_examples=60, deadline=None)
@given(ranking_cases())
def test_recall_monotone_in_k(case):
    scores, positives, k = case
    if k >= len(scores):
        return
    assert recall_at_k(scores, positives, k) <= recall_at_k(scores, positives, k + 1)


@settings(max_examples=60, deadline=None)
@given(ranking_cases())
def test_hit_monotone_in_k(case):
    scores, positives, k = case
    if k >= len(scores):
        return
    assert hit_at_k(scores, positives, k) <= hit_at_k(scores, positives, k + 1)


@settings(max_examples=60, deadline=None)
@given(ranking_cases())
def test_single_positive_makes_hit_equal_recall(case):
    """The Yelp phenomenon: |positives| == 1 => hit@k == rec@k."""
    scores, positives, k = case
    single = {next(iter(positives))}
    assert hit_at_k(scores, single, k) == recall_at_k(scores, single, k)


@settings(max_examples=60, deadline=None)
@given(ranking_cases())
def test_full_k_recovers_everything(case):
    scores, positives, k = case
    assert recall_at_k(scores, positives, len(scores)) == 1.0
    assert hit_at_k(scores, positives, len(scores)) == 1.0


@settings(max_examples=60, deadline=None)
@given(ranking_cases())
def test_score_shift_invariance(case):
    """Adding a constant to every score cannot change any ranking metric."""
    scores, positives, k = case
    shifted = scores + 123.456
    assert recall_at_k(scores, positives, k) == recall_at_k(shifted, positives, k)
    assert ndcg_at_k(scores, positives, k) == ndcg_at_k(shifted, positives, k)


@settings(max_examples=60, deadline=None)
@given(ranking_cases())
def test_topk_is_prefix_of_full_ranking(case):
    scores, __, k = case
    full = top_k_items(scores, len(scores))
    np.testing.assert_array_equal(top_k_items(scores, k), full[:k])


@settings(max_examples=60, deadline=None)
@given(ranking_cases())
def test_precision_recall_relationship(case):
    """precision * k == recall * |positives| (both count hits in top-k)."""
    scores, positives, k = case
    hits_from_precision = precision_at_k(scores, positives, k) * min(k, len(scores))
    hits_from_recall = recall_at_k(scores, positives, k) * len(positives)
    assert abs(hits_from_precision - hits_from_recall) < 1e-9
