"""Property-based tests (hypothesis) for data-layer invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data import InteractionTable, NegativeSampler, split_interactions


@st.composite
def tables(draw):
    rows = draw(st.integers(2, 15))
    cols = draw(st.integers(3, 25))
    fill = draw(st.integers(1, min(40, rows * cols - 1)))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    pairs = set()
    while len(pairs) < fill:
        pairs.add((int(rng.integers(rows)), int(rng.integers(cols))))
    return InteractionTable(rows, cols, sorted(pairs))


@settings(max_examples=50, deadline=None)
@given(tables(), st.integers(0, 10_000))
def test_split_partitions_exactly(table, seed):
    split = split_interactions(table, rng=np.random.default_rng(seed))
    recombined = np.concatenate(
        [split.train.pairs, split.validation.pairs, split.test.pairs]
    )
    recombined = recombined[np.lexsort((recombined[:, 1], recombined[:, 0]))]
    np.testing.assert_array_equal(recombined, table.pairs)


@settings(max_examples=50, deadline=None)
@given(tables(), st.integers(0, 10_000))
def test_split_ratio_bounds(table, seed):
    split = split_interactions(table, rng=np.random.default_rng(seed))
    n = table.num_interactions
    train, validation, test = split.sizes
    assert validation == int(n * 0.2)
    assert test == int(n * 0.2)
    assert train == n - validation - test


@settings(max_examples=50, deadline=None)
@given(tables(), st.integers(0, 10_000))
def test_negative_sampler_respects_positives_when_possible(table, seed):
    sampler = NegativeSampler(table, rng=np.random.default_rng(seed))
    rows = table.pairs[:, 0]
    negatives = sampler.sample_for_rows(rows)
    for row, negative in zip(rows, negatives):
        positives = set(table.items_of(int(row)).tolist())
        if len(positives) < table.num_cols:
            assert int(negative) not in positives
        assert 0 <= negative < table.num_cols


@settings(max_examples=50, deadline=None)
@given(tables())
def test_row_counts_sum_to_interactions(table):
    assert table.row_counts().sum() == table.num_interactions


@settings(max_examples=50, deadline=None)
@given(tables())
def test_dense_and_csr_agree(table):
    np.testing.assert_array_equal(table.to_csr().toarray(), table.to_dense())


@settings(max_examples=50, deadline=None)
@given(tables())
def test_items_of_consistent_with_pairs(table):
    for row in range(table.num_rows):
        items = set(table.items_of(row).tolist())
        expected = {int(c) for r, c in table.pairs if r == row}
        assert items == expected


@settings(max_examples=50, deadline=None)
@given(tables(), st.integers(0, 10_000))
def test_triplet_positives_are_real(table, seed):
    sampler = NegativeSampler(table, rng=np.random.default_rng(seed))
    triplets = sampler.sample_triplets(table.pairs)
    for row, pos, neg in triplets:
        assert (int(row), int(pos)) in table
