"""Benchmark: regenerate Table III (ablation experiments, RQ2).

Shape assertions: the full model does not trail any weakened version
beyond tolerance, and the KG ablation is the most damaging one (the
paper's central claim).
"""

from repro.experiments import table3_ablation

from conftest import run_once

TOLERANCE = {"default": 0.03, "full": 0.02}


def test_table3_ablations(benchmark, profile):
    results = run_once(benchmark, table3_ablation.run, profile)
    table = table3_ablation.render(results)
    benchmark.extra_info["table"] = table
    print()
    print(table)

    if profile.name not in TOLERANCE:
        return  # quick profile: regeneration only, orderings are noise
    tolerance = TOLERANCE[profile.name]
    full = results["KGAG"].mean("rec@5")
    for variant in table3_ablation.VARIANTS:
        if variant == "KGAG":
            continue
        weakened = results[variant].mean("rec@5")
        assert full >= weakened - tolerance, (
            f"full KGAG ({full:.4f}) should not trail {variant} ({weakened:.4f})"
        )
