"""Loss functions used by the paper's optimization block (Sec. III-E).

* :func:`bce_with_logits` — the user-item log loss of Eq. 18.
* :func:`bpr_loss` — Bayesian personalized ranking, the KGAG (BPR) ablation.
* :func:`sigmoid_margin_loss` — the paper's novel pairwise loss (Eqs. 16-17):
  ``max(sigma(y_neg) - sigma(y_pos) + M, 0)``.
* :func:`l2_penalty` — the ``lambda * ||Theta||^2`` term of Eq. 20.
"""

from __future__ import annotations

from typing import Iterable

from .module import Parameter
from .ops import maximum, sigmoid
from .tensor import Tensor, as_tensor

__all__ = [
    "bce_with_logits",
    "bpr_loss",
    "sigmoid_margin_loss",
    "margin_loss_raw",
    "mse_loss",
    "l2_penalty",
]


def bce_with_logits(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Binary cross-entropy on raw scores (numerically stable).

    Implements ``-y log sigma(x) - (1-y) log(1 - sigma(x))`` via the stable
    identity ``max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """
    x = as_tensor(logits)
    targets = as_tensor(targets)
    # Stable identity: max(x, 0) - x*y + log(1 + exp(-|x|)), with the
    # log-term built from primitives so it stays differentiable.  The
    # |x| primitive keeps the graph free of per-batch constant tensors
    # (the old ``x * sign(x)`` idiom baked sign(x) in as a leaf), so the
    # loss is capturable by the compiled executor; values and gradients
    # are bit-identical to the old formulation.
    neg_abs_x = -x.abs()
    softplus_term = (neg_abs_x.exp() + 1.0).log()
    loss = maximum(x, 0.0) - x * targets + softplus_term
    return _reduce(loss, reduction)


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor, reduction: str = "mean") -> Tensor:
    """Bayesian personalized ranking loss: ``-log sigma(pos - neg)``."""
    pos_scores = as_tensor(pos_scores)
    neg_scores = as_tensor(neg_scores)
    diff = pos_scores - neg_scores
    # -log(sigmoid(d)) == softplus(-d), computed stably.
    neg_diff = -diff
    loss = _softplus(neg_diff)
    return _reduce(loss, reduction)


def sigmoid_margin_loss(
    pos_scores: Tensor,
    neg_scores: Tensor,
    margin: float = 0.4,
    reduction: str = "mean",
) -> Tensor:
    """The paper's pairwise loss (Eq. 17).

    Requires ``sigma(pos) - sigma(neg) >= margin``; the hinge
    ``max(sigma(neg) - sigma(pos) + margin, 0)`` penalizes violations.
    """
    if not 0.0 <= margin <= 1.0:
        raise ValueError(
            f"margin must lie in [0, 1] because scores are sigmoid-squashed, got {margin}"
        )
    pos = sigmoid(as_tensor(pos_scores))
    neg = sigmoid(as_tensor(neg_scores))
    loss = maximum(neg - pos + margin, 0.0)
    return _reduce(loss, reduction)


def margin_loss_raw(
    pos_scores: Tensor,
    neg_scores: Tensor,
    margin: float = 0.4,
    reduction: str = "mean",
) -> Tensor:
    """Margin hinge on *raw* scores (no sigmoid squashing).

    Not used by the paper; provided for the ablation in DESIGN.md §4 that
    asks whether the sigmoid normalization in Eq. 16 matters.
    """
    pos = as_tensor(pos_scores)
    neg = as_tensor(neg_scores)
    loss = maximum(neg - pos + margin, 0.0)
    return _reduce(loss, reduction)


def mse_loss(predictions: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Mean squared error — used by the explicit-rating MF reference tests."""
    predictions = as_tensor(predictions)
    targets = as_tensor(targets)
    loss = (predictions - targets) ** 2
    return _reduce(loss, reduction)


def l2_penalty(parameters: Iterable[Parameter]) -> Tensor:
    """Sum of squared parameter values: ``||Theta||^2`` in Eq. 20."""
    total: Tensor | None = None
    for parameter in parameters:
        term = (parameter * parameter).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total


def _softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))`` built from primitives."""
    neg_abs_x = -x.abs()  # no data-dependent constant leaf: capturable
    return maximum(x, 0.0) + (neg_abs_x.exp() + 1.0).log()


def _reduce(loss: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")
