"""Tape-free ranking engine over an :class:`~repro.serve.index.EmbeddingIndex`.

Answers top-K group recommendation requests in pure numpy.  The math is
a line-for-line mirror of the training stack — propagation follows
:class:`~repro.core.propagation.InformationPropagation` (Eqs. 1-8) and
the SP/PI attention follows
:class:`~repro.core.attention.PreferenceAggregation` (Eqs. 9-13) — with
the same operation order, so scores match the autograd path bit for bit
on identical batches.  There is no tape, no ``Tensor`` wrapper and no
parameter extraction per request: everything reads from the frozen index
arrays.

Two additions over the offline path:

* **request micro-batching** — :class:`MicroBatcher` coalesces score
  requests issued by concurrent server threads into one vectorized
  forward (one matmul instead of one per request);
* **interacted-item masking** — :meth:`RankingEngine.top_k` reproduces
  the serving semantics of
  :meth:`~repro.core.predict.GroupRecommender.recommend` exactly,
  including the ``-inf`` exclusion mask and stable tie-breaking.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RankedItem",
    "propagate",
    "engine_supports",
    "LiveModelIndex",
    "RankingEngine",
    "MicroBatcher",
]


@dataclass(frozen=True)
class RankedItem:
    """One ranked candidate: raw score plus sigmoid probability."""

    item: int
    score: float
    probability: float


def _activate(x: np.ndarray, name: str) -> np.ndarray:
    # Mirrors repro.core.propagation._activate on raw arrays.
    if name == "tanh":
        return np.tanh(x)
    if name == "relu":
        return np.maximum(x, 0.0)
    if name == "sigmoid":
        return np.where(
            x >= 0,
            1.0 / (1.0 + np.exp(-np.abs(x))),
            np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))),
        )
    if name == "identity":
        return x
    raise ValueError(f"unknown activation {name!r}")


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    # Mirrors repro.nn.ops.softmax (max-shifted, same op order).
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def propagate(index, seed_entities: np.ndarray, query_vectors: np.ndarray) -> np.ndarray:
    """H-layer relation-attentive propagation from frozen arrays.

    Line-for-line numpy mirror of
    :meth:`~repro.core.propagation.InformationPropagation.forward`; see
    that docstring for the math.  ``seed_entities`` is ``(batch,)``,
    ``query_vectors`` is ``(batch, d)``; returns ``(batch, d)``.
    """
    seeds = np.asarray(seed_entities, dtype=np.int64)
    dim = index.dim
    if index.num_layers == 0:
        return index.entity_embeddings[seeds]
    if index.entity_final is not None:
        # Query-independent: the GCN already ran at build time.
        return index.entity_final[seeds]

    batch = len(seeds)
    k = index.num_neighbors
    layers = index.aggregator_layers
    aggregator = index.aggregator
    depth = index.num_layers

    entities = [seeds]
    relations: list[np.ndarray] = []
    for _hop in range(depth):
        current = entities[-1]
        entities.append(index.neighbor_entities[current].reshape(batch, -1))
        relations.append(index.neighbor_relations[current].reshape(batch, -1))

    entity_vectors = [
        index.entity_embeddings[level].reshape(batch, -1, dim) for level in entities
    ]
    query = query_vectors.reshape(batch, dim)
    # Same formulation as the tape path (one (B, R) logit GEMM against
    # the relation table, per-edge scalar gathers, weights hoisted out
    # of the layer loop), so the two stay bit-identical.
    if index.uniform_weights:
        hop_weights = [
            np.full((batch, level.shape[1] // k, k), 1.0 / k) for level in relations
        ]
    else:
        logit_table = query @ index.relation_embeddings.T
        hop_weights = [
            _softmax(
                np.take_along_axis(logit_table, level, axis=1).reshape(
                    batch, -1, k
                ),
                axis=-1,
            )
            for level in relations
        ]

    for iteration in range(depth):
        weight, bias, activation = layers[iteration]
        next_vectors: list[np.ndarray] = []
        for hop in range(depth - iteration):
            neighbors = entity_vectors[hop + 1].reshape(batch, -1, k, dim)
            neighborhood = np.einsum("bwk,bwkd->bwd", hop_weights[hop], neighbors)
            self_vectors = entity_vectors[hop].reshape(-1, dim)
            neighbor_flat = neighborhood.reshape(-1, dim)
            if aggregator == "gcn":
                updated = (self_vectors + neighbor_flat) @ weight.T + bias
            else:  # graphsage
                updated = (
                    np.concatenate([self_vectors, neighbor_flat], axis=-1) @ weight.T
                    + bias
                )
            updated = _activate(updated, activation)
            next_vectors.append(updated.reshape(batch, -1, dim))
        entity_vectors = next_vectors
    return entity_vectors[0].reshape(batch, dim)


def _catalog_propagate(index, seed_rows: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Shared-receptive-field propagation for full-catalog scoring.

    ``seed_rows`` is ``(M, S)`` — M independent seed tuples (one group's
    members, or one item) whose receptive fields are gathered **once**
    — and ``queries`` is ``(Q, d)`` — Q interaction-object queries, each
    applied against every seed tuple.  Returns ``(M, S, Q, d)`` final
    representations.

    This computes the same per-row math as :func:`propagate` over the
    full ``M x Q`` cross product, but without materializing the cross
    product's index tensors: the entity gathers are per seed tuple, the
    relation-attention logits come from one ``(R, d) @ (d, Q)`` GEMM
    against the whole relation table (each edge gathers its scalar
    column), and the neighborhood mixing is a batched matmul.  Only the
    float summation order inside dot products differs, so results agree
    with :func:`propagate` to round-off, not bit-for-bit.
    """
    m_rows, _size = seed_rows.shape
    q_rows, dim = queries.shape
    k = index.num_neighbors
    depth = index.num_layers
    layers = index.aggregator_layers
    aggregator = index.aggregator

    entities = [seed_rows]
    relations: list[np.ndarray] = []
    for _hop in range(depth):
        current = entities[-1]
        entities.append(index.neighbor_entities[current].reshape(m_rows, -1))
        relations.append(index.neighbor_relations[current].reshape(m_rows, -1))
    # hidden[h] is (M, n_h, d) while query-independent and gains a Q
    # axis — (M, n_h, Q, d) — after the first aggregation layer.
    hidden: list[np.ndarray] = [index.entity_embeddings[level] for level in entities]

    # Per-hop attention weights (M, n, Q, K), built once: logits for
    # every (relation, query) pair come from one small GEMM, then each
    # sampled edge gathers its column.
    if index.uniform_weights:
        hop_weights = [
            np.full((m_rows, entities[hop].shape[1], q_rows, k), 1.0 / k)
            for hop in range(depth)
        ]
    else:
        rel_logits = index.relation_embeddings @ queries.T  # (R, Q)
        hop_weights = [
            _softmax(
                np.swapaxes(
                    rel_logits[relations[hop]].reshape(
                        m_rows, entities[hop].shape[1], k, q_rows
                    ),
                    2,
                    3,
                ),
                axis=-1,
            )
            for hop in range(depth)
        ]

    for iteration in range(depth):
        weight, bias, activation = layers[iteration]
        next_hidden: list[np.ndarray] = []
        for hop in range(depth - iteration):
            n = entities[hop].shape[1]
            weights = hop_weights[hop]
            neighbors = hidden[hop + 1]
            if neighbors.ndim == 3:  # query-independent: batched GEMM
                neighborhood = np.matmul(
                    weights, neighbors.reshape(m_rows, n, k, dim)
                )  # (M, n, Q, d)
            else:  # already query-dependent: contract K per (m, n, q)
                nb = neighbors.reshape(m_rows, n, k, q_rows, dim)
                neighborhood = np.einsum("mnqk,mnkqd->mnqd", weights, nb)
            self_vectors = hidden[hop]
            if self_vectors.ndim == 3:
                self_vectors = np.broadcast_to(
                    self_vectors[:, :, None, :], neighborhood.shape
                )
            if aggregator == "gcn":
                updated = (self_vectors + neighborhood).reshape(-1, dim) @ weight.T + bias
            else:  # graphsage
                stacked = np.concatenate([self_vectors, neighborhood], axis=-1)
                updated = stacked.reshape(-1, 2 * dim) @ weight.T + bias
            updated = _activate(updated, activation)
            next_hidden.append(updated.reshape(m_rows, n, q_rows, dim))
        hidden = next_hidden
    return hidden[0]  # (M, S, Q, d)


def engine_supports(model) -> bool:
    """Whether the engine's numpy mirror covers ``model``'s config.

    The engine reproduces the KGAG scoring matrix exactly: GCN or
    GraphSage aggregation, attentive or uniform neighbor weights, any
    propagation depth (including the ``use_kg`` off case), SP and/or PI
    attention with concat or mean peer pooling.  Anything outside that —
    a different model class, an unknown aggregator or pooling mode —
    returns False so callers (the trainer's tape-free evaluation) can
    fall back to the tape path.
    """
    config = getattr(model, "config", None)
    if config is None:
        return False
    for attribute in ("propagation", "aggregation", "sampler", "ckg", "groups"):
        if not hasattr(model, attribute):
            return False
    if getattr(config, "aggregator", None) not in ("gcn", "graphsage"):
        return False
    if getattr(model.aggregation, "pi_pooling", None) not in ("concat", "mean"):
        return False
    known = {"tanh", "relu", "sigmoid", "identity"}
    for aggregator in model.propagation._aggregators:
        if aggregator.activation not in known:
            return False
    return True


class LiveModelIndex:
    """Zero-copy engine view over a live (possibly training) model.

    Exposes the same attribute surface as
    :class:`~repro.serve.index.EmbeddingIndex` but reads the model's
    parameter arrays **in place**: no array copies, no fingerprint
    hashing, no ``.npz`` round-trip.  Building one per validation pass
    costs microseconds, which is what makes per-epoch tape-free
    evaluation practical.  The view is only coherent while the
    parameters are not being updated — score, then let the optimizer
    step, then build a fresh view.
    """

    def __init__(self, model, train_interactions=None):
        if not engine_supports(model):
            raise ValueError(
                "model config is outside the engine's supported matrix "
                "(check engine_supports(model) before building a live view)"
            )
        propagation = model.propagation
        aggregation = model.aggregation
        self.entity_embeddings = propagation.entity_embedding.weight.data
        self.relation_embeddings = propagation.relation_embedding.weight.data
        tables = model.sampler.neighbor_table_views()
        self.neighbor_entities, self.neighbor_relations = tables
        self.attn_w_member = aggregation.w_member.data
        self.attn_w_peers = aggregation.w_peers.data
        self.attn_bias = aggregation.bias.data
        self.attn_context = aggregation.context.data
        self.peer_index = aggregation.peer_index
        self.group_members = model.groups.members
        self.item_entities = model.ckg.item_map.entities_of(
            np.arange(model.num_items)
        )
        self.dim = int(model.config.embedding_dim)
        self.num_layers = int(propagation.num_layers)
        self.num_neighbors = int(model.sampler.num_neighbors)
        self.num_groups = int(model.groups.num_groups)
        self.num_items = int(model.num_items)
        self.user_entity_offset = int(model.ckg.num_kg_entities)
        self.aggregator = str(model.config.aggregator)
        self.uniform_weights = bool(propagation.uniform_weights)
        self.use_sp = bool(aggregation.use_sp)
        self.use_pi = bool(aggregation.use_pi)
        self.pi_pooling = str(aggregation.pi_pooling)
        self.aggregator_layers = [
            (agg.linear.weight.data, agg.linear.bias.data, agg.activation)
            for agg in propagation._aggregators
        ]
        self.version = f"live-{id(model):x}"
        self.entity_final = None
        if self.num_layers > 0 and self.uniform_weights:
            # Query-independent propagation: run the GCN once over every
            # entity so scoring degenerates to gathers plus attention.
            all_entities = np.arange(self.entity_embeddings.shape[0])
            self.entity_final = propagate(
                self, all_entities, np.zeros((len(all_entities), self.dim))
            )
        self._train_interactions = train_interactions
        self._seen_lock = threading.Lock()
        self._seen_by_group: dict[int, np.ndarray] | None = None  # guarded-by: _seen_lock

    def seen_items(self, group_id: int) -> np.ndarray:
        """Items the group interacted with at train time (sorted)."""
        with self._seen_lock:
            if self._seen_by_group is None:
                by_group: dict[int, np.ndarray] = {}
                if self._train_interactions is not None:
                    pairs = self._train_interactions.pairs
                    for group in np.unique(pairs[:, 0]):
                        items = pairs[pairs[:, 0] == group, 1]
                        by_group[int(group)] = np.unique(items)
                self._seen_by_group = by_group
            table = self._seen_by_group
        return table.get(int(group_id), np.zeros(0, dtype=np.int64))


class RankingEngine:
    """Vectorized, cache-aware top-K scoring over a serving index.

    Parameters
    ----------
    index:
        The frozen :class:`~repro.serve.index.EmbeddingIndex`.
    cache:
        Optional :class:`~repro.serve.cache.ScoreCache`; full per-group
        score vectors are cached under ``(group, index.version)`` so
        repeated requests for a group (any ``k``) skip the forward pass.
    chunk_size:
        Pair-level chunking bound, matching the evaluator's default so a
        single-group full-catalog scoring runs through the exact same
        batch shapes as the offline path (bit-exact parity).
    fast_catalog:
        Route full-catalog requests (:meth:`scores_for_groups`) through
        :meth:`score_matrix`, which shares receptive-field gathers
        across the catalog instead of scoring each ``(group, item)``
        pair independently.  Scores agree with the pair path to float
        round-off (not bit-for-bit), so the default stays off for the
        bit-exact serving path; :meth:`from_model` — the per-epoch
        validation constructor — turns it on.
    """

    def __init__(self, index, cache=None, chunk_size: int = 4096, fast_catalog: bool = False):
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.index = index
        self.cache = cache
        self.chunk_size = int(chunk_size)
        self.fast_catalog = bool(fast_catalog)

    @classmethod
    def from_model(
        cls,
        model,
        train_interactions=None,
        cache=None,
        chunk_size: int = 4096,
    ) -> "RankingEngine":
        """Engine over a **live** model: no copies, no ``.npz`` round-trip.

        Wraps ``model`` in a :class:`LiveModelIndex` and enables the
        shared-receptive-field catalog path — the constructor the
        trainer's tape-free per-epoch validation uses.  Raises
        ``ValueError`` when :func:`engine_supports` rejects the model.
        """
        return cls(
            LiveModelIndex(model, train_interactions=train_interactions),
            cache=cache,
            chunk_size=chunk_size,
            fast_catalog=True,
        )

    # -- core scoring ----------------------------------------------------
    # Every public entry point captures ``self.index`` ONCE and threads
    # that snapshot through the private helpers below.  A concurrent
    # ``reload_index`` then flips requests atomically between coherent
    # indices instead of tearing one request across two.
    def score_pairs(self, group_ids, item_ids) -> np.ndarray:
        """ŷ scores for aligned ``(group, item)`` id arrays (Eq. 14)."""
        return self._score_pairs(self.index, group_ids, item_ids)

    def _score_pairs(self, index, group_ids, item_ids) -> np.ndarray:
        group_ids = np.asarray(group_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if group_ids.shape != item_ids.shape or group_ids.ndim != 1:
            raise ValueError("group_ids and item_ids must be aligned 1-D arrays")
        scores = np.empty(len(group_ids), dtype=np.float64)
        for start in range(0, len(group_ids), self.chunk_size):
            stop = start + self.chunk_size
            scores[start:stop] = self._score_chunk(
                index, group_ids[start:stop], item_ids[start:stop]
            )
        return scores

    def _score_chunk(
        self, index, group_ids: np.ndarray, item_ids: np.ndarray
    ) -> np.ndarray:
        """One propagation + attention pass; mirrors ``KGAG.group_item_scores``."""
        dim = index.dim
        members = index.group_members[group_ids]  # (B, S)
        size = members.shape[1]
        batch = len(group_ids)
        member_entities = index.user_entity_offset + members
        item_entities = index.item_entities[item_ids]

        # Member representations: candidate item as query (Eq. 2).
        item_queries = index.entity_embeddings[item_entities]  # (B, d)
        flat_queries = (
            np.broadcast_to(item_queries.reshape(batch, 1, dim), (batch, size, dim))
        ).reshape(batch * size, dim)
        member_vectors = propagate(
            index, member_entities.reshape(-1), flat_queries
        ).reshape(batch, size, dim)

        # Item representations: mean member zero-order as query (Eq. 2).
        member_zero = index.entity_embeddings[member_entities]  # (B, S, d)
        item_query = member_zero.sum(axis=1) * (1.0 / size)  # Tensor.mean mirror
        item_vectors = propagate(index, item_entities, item_query)

        group_vectors = self._aggregate(index, member_vectors, item_vectors)
        return (group_vectors * item_vectors).sum(axis=-1)

    def _raw_attention(
        self, index, member_vectors: np.ndarray, item_vectors: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(sp, pi, combined) raw scores; mirror of Eqs. 9-11."""
        batch, size, dim = member_vectors.shape
        zeros = np.zeros((batch, size))
        sp = pi = None
        if index.use_sp:
            item = item_vectors.reshape(batch, 1, dim)
            sp = (member_vectors * item).sum(axis=-1) * (1.0 / np.sqrt(dim))
        if index.use_pi:
            peers = size - 1
            peer_vectors = member_vectors[
                :, index.peer_index.reshape(-1), :
            ].reshape(batch, size, peers, dim)
            if index.pi_pooling == "concat":
                peer_input = peer_vectors.reshape(batch, size, peers * dim)
            else:  # mean pooling
                peer_input = peer_vectors.sum(axis=2) * (1.0 / peers)
            hidden = np.maximum(
                member_vectors @ index.attn_w_member.T
                + peer_input @ index.attn_w_peers.T
                + index.attn_bias,
                0.0,
            )
            pi = hidden @ index.attn_context
        if sp is not None and pi is not None:
            combined = sp + pi
        elif sp is not None:
            combined = sp
        elif pi is not None:
            combined = pi
        else:
            combined = zeros
        return (sp if sp is not None else zeros, pi if pi is not None else zeros, combined)

    def _aggregate(
        self, index, member_vectors: np.ndarray, item_vectors: np.ndarray
    ) -> np.ndarray:
        """Group representation g = Σ α̃ u_i (Eqs. 12-13)."""
        __, __, combined = self._raw_attention(index, member_vectors, item_vectors)
        weights = _softmax(combined, axis=-1)
        weights = weights.reshape(weights.shape[0], weights.shape[1], 1)
        return (weights * member_vectors).sum(axis=1)

    def _pi_mixing_matrix(self, index, size: int) -> np.ndarray:
        """Fold Eq. 10's member + pooled-peer projections into one
        ``(S*d, S*d)`` block matrix over the flattened member axis.

        ``mixing[t*d:(t+1)*d, s*d:(s+1)*d]`` maps member slot t's
        vector into slot s's pre-activation: ``w_member.T`` on the
        diagonal, the matching ``w_peers`` column block (concat
        pooling) or ``w_peers.T / peers`` (mean pooling) off it.  One
        GEMM then replaces the ``(B, S, S-1, d)`` peer gather.  The
        single pass reorders Eq. 10's additions, so this serves only
        the round-off-parity catalog path, never the bit-exact pair
        path (:meth:`_raw_attention`).
        """
        dim = index.dim
        peers = size - 1
        mixing = np.zeros((size * dim, size * dim))
        for s in range(size):
            col = slice(s * dim, (s + 1) * dim)
            mixing[col, col] = index.attn_w_member.T
            for j, t in enumerate(index.peer_index[s]):
                row = slice(t * dim, (t + 1) * dim)
                if index.pi_pooling == "concat":
                    block = index.attn_w_peers[:, j * dim : (j + 1) * dim]
                else:  # mean pooling spreads one projection over peers
                    block = index.attn_w_peers * (1.0 / peers)
                mixing[row, col] += block.T
        return mixing

    def _aggregate_catalog(
        self, index, member_vectors: np.ndarray, item_vectors: np.ndarray
    ) -> np.ndarray:
        """Catalog-path mirror of :meth:`_aggregate` (Eqs. 9-13).

        Same math, gather-free: the SP/PI/softmax reductions run as
        einsum contractions and the peer mixing as one block GEMM
        (:meth:`_pi_mixing_matrix`), which matters at catalog-block
        batch sizes (``groups x num_items`` rows).  Agrees with the
        pair path to float round-off, like the rest of the catalog
        route.
        """
        batch, size, dim = member_vectors.shape
        combined = np.zeros((batch, size))
        if index.use_sp:
            combined += np.einsum(
                "bsd,bd->bs", member_vectors, item_vectors
            ) * (1.0 / np.sqrt(dim))
        if index.use_pi:
            hidden = member_vectors.reshape(batch, size * dim) @ self._pi_mixing_matrix(index, size)
            hidden += np.tile(index.attn_bias, size)
            np.maximum(hidden, 0.0, out=hidden)
            combined += (hidden.reshape(batch * size, dim) @ index.attn_context).reshape(
                batch, size
            )
        weights = _softmax(combined, axis=-1)
        return np.einsum("bs,bsd->bd", weights, member_vectors)

    # -- request-level API ------------------------------------------------
    def scores_for_group(self, group_id: int) -> np.ndarray:
        """Full-catalog score vector for one group (cached)."""
        return self.scores_for_groups([int(group_id)])[0]

    def scores_for_groups(self, group_ids) -> np.ndarray:
        """``(B, num_items)`` score matrix for a batch of groups.

        Cached groups are answered from the score cache; the remaining
        misses are coalesced into one chunked forward pass — this is the
        micro-batch primitive the server's :class:`MicroBatcher` uses.
        """
        return self._scores_for_groups(self.index, group_ids)

    def _scores_for_groups(self, index, group_ids) -> np.ndarray:
        group_ids = [int(g) for g in group_ids]
        for group in group_ids:
            if not 0 <= group < index.num_groups:
                raise KeyError(f"group {group} out of range [0, {index.num_groups})")
        num_items = index.num_items
        out = np.empty((len(group_ids), num_items), dtype=np.float64)
        misses: dict[int, list[int]] = {}
        for row, group in enumerate(group_ids):
            cached = self._cache_get(index, group)
            if cached is not None:
                out[row] = cached
            else:
                misses.setdefault(group, []).append(row)
        if misses:
            unique = sorted(misses)
            if self.fast_catalog:
                matrix = self._score_matrix(index, np.array(unique, dtype=np.int64))
                scores = matrix.reshape(-1)
            else:
                pending_groups = np.repeat(
                    np.array(unique, dtype=np.int64), num_items
                )
                pending_items = np.tile(
                    np.arange(num_items, dtype=np.int64), len(unique)
                )
                scores = self._score_pairs(index, pending_groups, pending_items)
            for position, group in enumerate(unique):
                vector = scores[position * num_items : (position + 1) * num_items]
                self._cache_put(index, group, vector)
                for row in misses[group]:
                    out[row] = vector
        return out

    def score_matrix(self, group_ids) -> np.ndarray:
        """``(G, num_items)`` full-catalog scores via shared gathers.

        The algorithmic fast path behind per-epoch validation: each
        group's member receptive field and each item's receptive field
        are gathered once and reused across the whole cross product (see
        :func:`_catalog_propagate`), instead of once per ``(group,
        item)`` pair as :meth:`score_pairs` does.  Groups are processed
        in blocks of ``chunk_size // num_items`` pairs to bound memory.
        """
        return self._score_matrix(self.index, group_ids)

    def _score_matrix(self, index, group_ids) -> np.ndarray:
        group_ids = np.asarray(group_ids, dtype=np.int64)
        for group in group_ids:
            if not 0 <= group < index.num_groups:
                raise KeyError(f"group {group} out of range [0, {index.num_groups})")
        num_items = index.num_items
        out = np.empty((len(group_ids), num_items), dtype=np.float64)
        block = max(1, self.chunk_size // max(1, num_items))
        for start in range(0, len(group_ids), block):
            chunk = group_ids[start : start + block]
            out[start : start + len(chunk)] = self._score_catalog_block(index, chunk)
        return out

    def _score_catalog_block(self, index, group_ids: np.ndarray) -> np.ndarray:
        """Full-catalog scores for one block of groups."""
        dim = index.dim
        groups = len(group_ids)
        num_items = index.num_items
        members = index.group_members[group_ids]  # (G, S)
        size = members.shape[1]
        member_entities = index.user_entity_offset + members
        item_entities = index.item_entities  # the whole catalog, (I,)

        # Queries (Eq. 2): candidate item zero-order for member seeds,
        # mean member zero-order for item seeds.
        item_queries = index.entity_embeddings[item_entities]  # (I, d)
        member_zero = index.entity_embeddings[member_entities]  # (G, S, d)
        group_queries = member_zero.sum(axis=1) * (1.0 / size)  # (G, d)

        if index.num_layers == 0 or index.entity_final is not None:
            table = (
                index.entity_embeddings
                if index.num_layers == 0
                else index.entity_final
            )
            member_final = np.broadcast_to(
                table[member_entities][:, None], (groups, num_items, size, dim)
            )
            item_final = np.broadcast_to(
                table[item_entities][None], (groups, num_items, dim)
            )
        else:
            member_final = _catalog_propagate(
                index, member_entities, item_queries
            ).transpose(0, 2, 1, 3)  # (G, S, I, d) -> (G, I, S, d)
            item_final = (
                _catalog_propagate(
                    index, item_entities.reshape(-1, 1), group_queries
                )
                .reshape(num_items, groups, dim)
                .transpose(1, 0, 2)  # (G, I, d)
            )

        member_flat = member_final.reshape(groups * num_items, size, dim)
        item_flat = np.ascontiguousarray(item_final).reshape(
            groups * num_items, dim
        )
        group_vectors = self._aggregate_catalog(index, member_flat, item_flat)
        scores = np.einsum("bd,bd->b", group_vectors, item_flat)
        return scores.reshape(groups, num_items)

    def _cache_get(self, index, group: int) -> np.ndarray | None:
        if self.cache is None:
            return None
        return self.cache.get((group, index.version))

    def _cache_put(self, index, group: int, vector: np.ndarray) -> None:
        if self.cache is not None:
            self.cache.put((group, index.version), vector)

    def top_k(
        self, group_id: int, k: int = 5, exclude_seen: bool = True
    ) -> list[RankedItem]:
        """Top-k items for one group; semantics of ``GroupRecommender.recommend``."""
        if k <= 0:
            raise ValueError("k must be positive")
        index = self.index
        scores = self._scores_for_groups(index, [int(group_id)])[0]
        return self.rank(scores, index.seen_items(group_id) if exclude_seen else None, k)

    @staticmethod
    def rank(scores: np.ndarray, seen: np.ndarray | None, k: int) -> list[RankedItem]:
        """Mask, stable-sort and package a score vector (shared helper)."""
        if seen is not None and len(seen):
            scores = scores.copy()
            scores[seen] = -np.inf
        order = np.argsort(-scores, kind="stable")[:k]
        return [
            RankedItem(
                item=int(item),
                score=float(scores[item]),
                probability=float(1.0 / (1.0 + np.exp(-scores[item]))),
            )
            for item in order
            if np.isfinite(scores[item])
        ]

    def explain(self, group_id: int, item_id: int) -> dict:
        """Attention decomposition; mirror of :meth:`KGAG.explain`."""
        index = self.index
        group_ids = np.array([int(group_id)], dtype=np.int64)
        item_ids = np.array([int(item_id)], dtype=np.int64)
        dim = index.dim
        members = index.group_members[group_ids]
        size = members.shape[1]
        member_entities = index.user_entity_offset + members
        item_entities = index.item_entities[item_ids]

        item_queries = index.entity_embeddings[item_entities]
        flat_queries = (
            np.broadcast_to(item_queries.reshape(1, 1, dim), (1, size, dim))
        ).reshape(size, dim)
        member_vectors = propagate(
            index, member_entities.reshape(-1), flat_queries
        ).reshape(1, size, dim)
        member_zero = index.entity_embeddings[member_entities]
        item_query = member_zero.sum(axis=1) * (1.0 / size)
        item_vectors = propagate(index, item_entities, item_query)

        sp, pi, combined = self._raw_attention(index, member_vectors, item_vectors)
        weights = _softmax(combined, axis=-1)
        group_vector = (
            weights.reshape(1, size, 1) * member_vectors
        ).sum(axis=1)
        score = float((group_vector * item_vectors).sum(axis=-1)[0])
        return {
            "group": int(group_id),
            "item": int(item_id),
            "members": members[0].tolist(),
            "sp": sp[0].copy(),
            "pi": pi[0].copy(),
            "combined": combined[0].copy(),
            "attention": weights[0].copy(),
            "score": score,
            "probability": float(1.0 / (1.0 + np.exp(-score))),
        }


class MicroBatcher:
    """Coalesces concurrent score requests into one engine call.

    Server threads call :meth:`scores_for_group`; the first caller in a
    window becomes the *leader*, waits up to ``max_wait_ms`` for peers to
    pile on (or until ``max_batch`` requests are queued), then runs one
    vectorized :meth:`RankingEngine.scores_for_groups` for the whole
    batch and hands each waiter its row.  Under a single-threaded client
    the wait degenerates to one timeout and one single-row batch.
    """

    def __init__(self, engine: RankingEngine, max_wait_ms: float = 2.0, max_batch: int = 64):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.engine = engine
        self.max_wait = max(0.0, float(max_wait_ms)) / 1000.0
        self.max_batch = int(max_batch)
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._pending: list[_PendingRequest] = []  # guarded-by: _condition
        self._leader_active = False  # guarded-by: _condition
        self._closed = False  # guarded-by: _condition
        self._batches_run = 0  # guarded-by: _condition
        self._requests_served = 0  # guarded-by: _condition

    @property
    def batches_run(self) -> int:
        with self._condition:
            return self._batches_run

    @property
    def requests_served(self) -> int:
        with self._condition:
            return self._requests_served

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    def scores_for_group(self, group_id: int) -> np.ndarray:
        request = _PendingRequest(int(group_id))
        with self._condition:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._pending.append(request)
            if len(self._pending) >= self.max_batch:
                self._condition.notify_all()
            lead = not self._leader_active
            if lead:
                self._leader_active = True
        if lead:
            self._lead_batch()
        request.done.wait()
        if request.error is not None:
            raise request.error
        return request.result

    def close(self) -> None:
        """Refuse new work; idempotent, pending requests still complete.

        Every queued request either became the leader or is guaranteed
        to be collected by the currently active leader (the queue swap
        is atomic under the condition), so closing never strands a
        waiter; the ``notify_all`` just wakes a waiting leader early.
        """
        with self._condition:
            if self._closed:
                return
            self._closed = True
            self._condition.notify_all()

    def _lead_batch(self) -> None:
        with self._condition:
            if (
                self.max_wait > 0
                and len(self._pending) < self.max_batch
                and not self._closed
            ):
                self._condition.wait(timeout=self.max_wait)
            batch, self._pending = self._pending, []
            self._leader_active = False
        if not batch:
            return
        try:
            groups = [request.group for request in batch]
            rows = self.engine.scores_for_groups(groups)
            for row, request in enumerate(batch):
                request.result = rows[row]
        except Exception as error:  # propagate to every waiter
            for request in batch:
                request.error = error
        finally:
            with self._condition:
                self._batches_run += 1
                self._requests_served += len(batch)
            # Wake waiters only after the counters are consistent, and
            # outside the lock so they don't immediately block on it.
            for request in batch:
                request.done.set()


class _PendingRequest:
    """One queued micro-batch entry."""

    __slots__ = ("group", "done", "result", "error")

    def __init__(self, group: int):
        self.group = group
        self.done = threading.Event()
        self.result: np.ndarray | None = None
        self.error: Exception | None = None
