"""Concurrency lint rules: lock discipline for the serve/obs thread surface.

The serving stack holds shared mutable state behind ~10 locks — the
score cache's LRU map, the micro-batcher's pending queue, the breaker's
state machine, every metrics instrument — and nothing but code review
guards the discipline.  This module makes the discipline *declarative*
and machine-checked:

Annotation convention
---------------------
An instance attribute that must only be touched while holding a lock is
annotated with a trailing comment on its initializing assignment::

    class ScoreCache:
        def __init__(self):
            self._lock = threading.Lock()
            self._hits = 0  # guarded-by: _lock

The lock name is the ``self.<attr>`` used in ``with`` statements (for a
``Condition`` built over a lock, annotate with the *condition* attribute
if that is what the code acquires).  Methods named ``__init__`` or
ending in ``_locked`` are exempt from RL101 — the ``_locked`` suffix is
the repo's convention for helpers whose contract is "caller holds the
lock".

Rule catalogue
--------------
RL101  A ``# guarded-by:``-annotated attribute is read or written
       outside a ``with self.<lock>:`` block (closures count as outside:
       they may run after the lock is released).
RL102  Check-then-act split across two separate ``with self.<lock>:``
       blocks in one method: a guarded attribute tested in the first
       block and mutated in the second is not atomic — the lock was
       released in between.
RL103  Lock-order violation: nested ``with`` statements define a
       whole-program acquisition-order graph; a cycle means two call
       paths can deadlock.  Reported on every edge participating in a
       cycle.
RL104  ``threading.Thread`` / ``ThreadPoolExecutor`` (or Timer /
       Process / ProcessPoolExecutor) created with no reachable
       ``join()`` / ``shutdown()`` — in the enclosing function, or
       anywhere in the enclosing class when the object is stored on
       ``self``.  Returning the object hands the obligation to the
       caller.
RL105  Blocking call while holding a lock: ``time.sleep``, ``open()``,
       ``Future.result()``, zero-argument ``.join()``, or
       ``.wait()`` / ``.acquire()`` on anything other than the held
       lock itself (``Condition.wait`` on the held condition releases
       it, so it is exempt).
RL107  ``shared_memory.SharedMemory`` created or attached with no
       reachable ``close()`` — plus ``unlink()`` when ``create=True`` —
       in the enclosing function, or anywhere in the enclosing class
       when the segment is stored on ``self``.  Returning the segment
       hands the obligation to the caller.  Leaked POSIX segments
       outlive the process.

The annotation parser is shared with the runtime lockset detector
(:mod:`repro.analysis.racecheck`), so one ``# guarded-by:`` comment
feeds both the static rules and the Eraser-style dynamic check.
"""

from __future__ import annotations

import ast
import inspect
import io
import re
import textwrap
import tokenize
from typing import Iterable, Iterator

from .rules import Finding, Rule, Severity

__all__ = [
    "guard_comment_lines",
    "guarded_fields",
    "GuardedAccessRule",
    "CheckThenActRule",
    "LockOrderRule",
    "UnjoinedThreadRule",
    "BlockingCallUnderLockRule",
    "SharedMemoryLifecycleRule",
    "CONCURRENCY_RULES",
]

_GUARD_COMMENT = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

# Names that plausibly denote a lock object; used to keep RL103/RL105
# from treating arbitrary context managers (files, spans, no_grad) as
# lock acquisitions.
_LOCKISH = ("lock", "cond", "mutex", "sem")

# Container methods that mutate in place (RL102's "act" half).
_MUTATORS = {
    "append", "appendleft", "add", "clear", "discard", "extend", "insert",
    "move_to_end", "pop", "popitem", "popleft", "remove", "setdefault",
    "update",
}


# ---------------------------------------------------------------------------
# annotation parsing (shared with repro.analysis.racecheck)
# ---------------------------------------------------------------------------


def guard_comment_lines(source: str) -> dict[int, str]:
    """``{line_number: lock_attr}`` for every ``# guarded-by:`` comment."""
    lines: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _GUARD_COMMENT.search(token.string)
            if match:
                lines[token.start[0]] = match.group(1)
    except tokenize.TokenError:
        pass
    return lines


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested class definitions."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, ast.ClassDef):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _guarded_fields_in_class(
    classdef: ast.ClassDef, comments: dict[int, str]
) -> dict[str, str]:
    """``{attr: lock_attr}`` declared by annotated ``self.X = ...`` lines."""
    guarded: dict[str, str] = {}
    for node in _own_nodes(classdef):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        else:
            continue
        lock = comments.get(node.lineno)
        if lock is None:
            continue
        for target in targets:
            attr = _self_attr(target)
            if attr is not None:
                guarded[attr] = lock
    return guarded


def guarded_fields(cls: type) -> dict[str, str]:
    """Runtime view of a class's ``# guarded-by:`` annotations.

    Returns ``{attribute: lock_attribute}``; empty when the source is
    unavailable (built-ins, REPL classes) or carries no annotations.
    The racecheck detector uses this to decide which fields of a
    tracked object to monitor.
    """
    try:
        source = textwrap.dedent(inspect.getsource(cls))
    except (OSError, TypeError):
        return {}
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return {}
    comments = guard_comment_lines(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
            return _guarded_fields_in_class(node, comments)
    return {}


# ---------------------------------------------------------------------------
# statement walking with held-lock tracking
# ---------------------------------------------------------------------------


def _is_lockish(name: str) -> bool:
    lowered = name.lower()
    return any(piece in lowered for piece in _LOCKISH)


def _stmt_expressions(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Expressions attached directly to ``stmt`` (not nested statements)."""
    for _field, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for element in value:
                if isinstance(element, ast.expr):
                    yield element


def _child_statement_groups(stmt: ast.stmt) -> list[list[ast.stmt]]:
    groups = []
    for field in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field, None)
        if isinstance(value, list) and value:
            groups.append(value)
    for handler in getattr(stmt, "handlers", ()) or ():
        groups.append(handler.body)
    return groups


def _scan_expr(expr: ast.expr, held: frozenset):
    """Yield ``(node, attr, held)`` for every ``self.X`` access in ``expr``.

    Lambda bodies restart with an empty held set: they execute later,
    possibly after every lock here has been released.
    """
    stack = [(expr, held)]
    while stack:
        node, locks = stack.pop()
        if isinstance(node, ast.Lambda):
            stack.append((node.body, frozenset()))
            continue
        attr = _self_attr(node)
        if attr is not None:
            yield node, attr, locks
        for child in ast.iter_child_nodes(node):
            stack.append((child, locks))


def _walk_accesses(stmts: Iterable[ast.stmt], held: frozenset):
    """Yield ``(node, attr, held)`` for every ``self.X`` access under
    ``stmts``, tracking which ``with self.<lock>:`` attrs are held.

    Nested function bodies (closures) restart with an empty held set —
    the ``with`` wraps the *definition*, not the call.
    """
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _walk_accesses(stmt.body, frozenset())
            continue
        if isinstance(stmt, ast.ClassDef):
            continue
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in stmt.items:
                yield from _scan_expr(item.context_expr, frozenset(acquired))
                lock = _self_attr(item.context_expr)
                if lock is not None:
                    acquired.add(lock)
            yield from _walk_accesses(stmt.body, frozenset(acquired))
            continue
        for expr in _stmt_expressions(stmt):
            yield from _scan_expr(expr, held)
        for group in _child_statement_groups(stmt):
            yield from _walk_accesses(group, held)


def _class_methods(classdef: ast.ClassDef):
    for stmt in classdef.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


# ---------------------------------------------------------------------------
# RL101 — guarded attribute accessed without its lock
# ---------------------------------------------------------------------------


class GuardedAccessRule(Rule):
    id = "RL101"
    severity = Severity.ERROR
    needs_source = True
    description = (
        "`# guarded-by:` attribute accessed outside `with self.<lock>:`"
    )

    def check_source(
        self, tree: ast.Module, source: str, path: str
    ) -> Iterator[Finding]:
        comments = guard_comment_lines(source)
        if not comments:
            return
        for classdef in ast.walk(tree):
            if not isinstance(classdef, ast.ClassDef):
                continue
            guarded = _guarded_fields_in_class(classdef, comments)
            if not guarded:
                continue
            for method in _class_methods(classdef):
                if method.name == "__init__" or method.name.endswith("_locked"):
                    continue
                for node, attr, held in _walk_accesses(method.body, frozenset()):
                    lock = guarded.get(attr)
                    if lock is not None and lock not in held:
                        yield self.finding(
                            node,
                            path,
                            f"`self.{attr}` is annotated `# guarded-by: "
                            f"{lock}` but `{classdef.name}.{method.name}` "
                            f"accesses it without holding `self.{lock}`",
                        )


# ---------------------------------------------------------------------------
# RL102 — check-then-act split across a lock release
# ---------------------------------------------------------------------------


def _lock_blocks(method: ast.stmt, locks: set[str]) -> list[tuple[str, ast.With]]:
    """``(lock, with_node)`` for every ``with self.<lock>:`` in ``method``."""
    blocks = []
    for node in ast.walk(method):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr in locks:
                blocks.append((attr, node))
    blocks.sort(key=lambda pair: pair[1].lineno)
    return blocks


def _guarded_reads_in_tests(
    block: ast.With, guarded: dict[str, str], lock: str
) -> set[str]:
    """Guarded attrs (of ``lock``) read in condition positions in ``block``."""
    checked: set[str] = set()
    for node in ast.walk(block):
        test = None
        if isinstance(node, (ast.If, ast.While, ast.Assert)):
            test = node.test
        elif isinstance(node, ast.IfExp):
            test = node.test
        if test is None:
            continue
        for sub in ast.walk(test):
            attr = _self_attr(sub)
            if attr is not None and guarded.get(attr) == lock:
                checked.add(attr)
    return checked


def _mutation_root(target: ast.expr) -> str | None:
    """The ``self.X`` base of an assignment/delete target, if any."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        attr = _self_attr(node)
        if attr is not None:
            return attr
        node = node.value
    return None


def _guarded_mutations(
    block: ast.With, guarded: dict[str, str], lock: str
) -> dict[str, ast.AST]:
    """``{attr: node}`` for guarded attrs (of ``lock``) mutated in ``block``."""
    mutated: dict[str, ast.AST] = {}

    def note(attr: str | None, node: ast.AST) -> None:
        if attr is not None and guarded.get(attr) == lock:
            mutated.setdefault(attr, node)

    for node in ast.walk(block):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                note(_mutation_root(target), node)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            note(_mutation_root(node.target), node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                note(_mutation_root(target), node)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                note(_self_attr(node.func.value), node)
    return mutated


class CheckThenActRule(Rule):
    id = "RL102"
    severity = Severity.ERROR
    needs_source = True
    description = (
        "check-then-act on a guarded attribute split across two lock blocks"
    )

    def check_source(
        self, tree: ast.Module, source: str, path: str
    ) -> Iterator[Finding]:
        comments = guard_comment_lines(source)
        if not comments:
            return
        for classdef in ast.walk(tree):
            if not isinstance(classdef, ast.ClassDef):
                continue
            guarded = _guarded_fields_in_class(classdef, comments)
            if not guarded:
                continue
            for method in _class_methods(classdef):
                if method.name == "__init__":
                    continue
                blocks = _lock_blocks(method, set(guarded.values()))
                for i, (lock_a, node_a) in enumerate(blocks):
                    contained = set(ast.walk(node_a))
                    for lock_b, node_b in blocks[i + 1:]:
                        if lock_a != lock_b or node_b in contained:
                            continue
                        checked = _guarded_reads_in_tests(node_a, guarded, lock_a)
                        acted = _guarded_mutations(node_b, guarded, lock_b)
                        for attr in sorted(checked & set(acted)):
                            yield self.finding(
                                acted[attr],
                                path,
                                f"`self.{attr}` is tested under `self."
                                f"{lock_a}` at line {node_a.lineno} but "
                                f"mutated in a separate `with self."
                                f"{lock_b}:` block — the check-then-act "
                                "is not atomic across the lock release",
                            )


# ---------------------------------------------------------------------------
# RL103 — whole-program lock acquisition order
# ---------------------------------------------------------------------------


def _lock_node_id(expr: ast.expr, class_name: str | None) -> str | None:
    attr = _self_attr(expr)
    if attr is not None and _is_lockish(attr):
        return f"{class_name or '<module>'}.{attr}"
    if isinstance(expr, ast.Name) and _is_lockish(expr.id):
        return expr.id
    return None


class LockOrderRule(Rule):
    """Program-level rule: state accumulates across every linted file."""

    id = "RL103"
    severity = Severity.ERROR
    program = True
    description = "inconsistent lock acquisition order (potential deadlock)"

    def begin(self) -> dict:
        return {"edges": {}}

    def observe(
        self, state: dict, tree: ast.Module, path: str, source: str
    ) -> None:
        self._collect(tree.body, None, [], state["edges"], path)

    def _collect(self, stmts, class_name, held, edges, path) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.ClassDef):
                self._collect(stmt.body, stmt.name, [], edges, path)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def runs later: locks held here are not held
                # when its body executes.
                self._collect(stmt.body, class_name, [], edges, path)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = list(held)
                for item in stmt.items:
                    node_id = _lock_node_id(item.context_expr, class_name)
                    if node_id is None:
                        continue
                    for outer in inner:
                        if outer != node_id:
                            edges.setdefault(
                                (outer, node_id),
                                (path, item.context_expr.lineno),
                            )
                    inner.append(node_id)
                self._collect(stmt.body, class_name, inner, edges, path)
            else:
                for group in _child_statement_groups(stmt):
                    self._collect(group, class_name, held, edges, path)

    def finalize(self, state: dict) -> Iterator[Finding]:
        edges = state["edges"]
        adjacency: dict[str, set[str]] = {}
        for outer, inner in edges:
            adjacency.setdefault(outer, set()).add(inner)
        ordered = sorted(edges.items(), key=lambda kv: (kv[1][0], kv[1][1]))
        for (outer, inner), (path, line) in ordered:
            if self._reaches(adjacency, inner, outer):
                yield Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=path,
                    line=line,
                    col=0,
                    message=(
                        f"acquiring `{inner}` while holding `{outer}` "
                        f"conflicts with another code path that acquires "
                        f"`{outer}` while (transitively) holding "
                        f"`{inner}` — potential deadlock"
                    ),
                )

    @staticmethod
    def _reaches(adjacency: dict[str, set[str]], start: str, goal: str) -> bool:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency.get(node, ()):
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        # Single-file convenience entry (lint_source); the driver calls
        # begin/observe/finalize directly when linting whole trees.
        state = self.begin()
        self.observe(state, tree, path, "")
        yield from self.finalize(state)


# ---------------------------------------------------------------------------
# RL104 — threads/executors without a reachable join/shutdown
# ---------------------------------------------------------------------------


class UnjoinedThreadRule(Rule):
    id = "RL104"
    severity = Severity.ERROR
    description = "Thread/Executor created without a reachable join/shutdown"

    _FACTORIES = {
        "Thread",
        "Timer",
        "Process",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
    }
    _RELEASES = {"join", "shutdown"}

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            factory = self._factory_name(node.func)
            if factory is None:
                continue
            if not self._released(node, parents, tree):
                yield self.finding(
                    node,
                    path,
                    f"`{factory}` is created here but no `.join()`/"
                    "`.shutdown()` is reachable from this scope — the "
                    "worker can outlive its owner (store it on `self` "
                    "and release it in a close/stop method, or join "
                    "before returning)",
                )

    def _factory_name(self, func: ast.expr) -> str | None:
        if isinstance(func, ast.Name) and func.id in self._FACTORIES:
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in self._FACTORIES:
            return func.attr
        return None

    def _released(self, node: ast.Call, parents, tree: ast.Module) -> bool:
        chain = []
        cursor: ast.AST | None = node
        while cursor is not None:
            chain.append(cursor)
            cursor = parents.get(cursor)
        # Handing the object to the caller transfers the obligation.
        if any(isinstance(link, ast.Return) for link in chain):
            return True
        assigned_to_self = any(
            isinstance(link, (ast.Assign, ast.AnnAssign))
            and any(
                _self_attr(target) is not None
                for target in (
                    link.targets if isinstance(link, ast.Assign) else [link.target]
                )
            )
            for link in chain
        )
        functions = [
            link
            for link in chain
            if isinstance(link, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for function in functions:
            if self._has_release(function):
                return True
        if assigned_to_self:
            for link in chain:
                if isinstance(link, ast.ClassDef) and self._has_release(link):
                    return True
        if not functions and self._has_release(tree):
            return True
        return False

    def _has_release(self, scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._RELEASES
            ):
                return True
        return False


# ---------------------------------------------------------------------------
# RL105 — blocking calls while holding a lock
# ---------------------------------------------------------------------------


def _lockish_expr_text(expr: ast.expr) -> str | None:
    attr = _self_attr(expr)
    if attr is not None and _is_lockish(attr):
        return f"self.{attr}"
    if isinstance(expr, ast.Name) and _is_lockish(expr.id):
        return expr.id
    return None


def _calls_in_expr(expr: ast.expr, held: frozenset):
    stack = [(expr, held)]
    while stack:
        node, locks = stack.pop()
        if isinstance(node, ast.Lambda):
            stack.append((node.body, frozenset()))
            continue
        if isinstance(node, ast.Call):
            yield node, locks
        for child in ast.iter_child_nodes(node):
            stack.append((child, locks))


def _walk_calls(stmts: Iterable[ast.stmt], held: frozenset):
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _walk_calls(stmt.body, frozenset())
            continue
        if isinstance(stmt, ast.ClassDef):
            yield from _walk_calls(stmt.body, frozenset())
            continue
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in stmt.items:
                yield from _calls_in_expr(item.context_expr, frozenset(acquired))
                text = _lockish_expr_text(item.context_expr)
                if text is not None:
                    acquired.add(text)
            yield from _walk_calls(stmt.body, frozenset(acquired))
            continue
        for expr in _stmt_expressions(stmt):
            yield from _calls_in_expr(expr, held)
        for group in _child_statement_groups(stmt):
            yield from _walk_calls(group, held)


class BlockingCallUnderLockRule(Rule):
    id = "RL105"
    severity = Severity.ERROR
    description = "blocking call (I/O, .result(), sleep) while holding a lock"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for call, held in _walk_calls(tree.body, frozenset()):
            if not held:
                continue
            reason = self._blocking_reason(call, held)
            if reason is not None:
                locks = ", ".join(f"`{name}`" for name in sorted(held))
                yield self.finding(
                    call,
                    path,
                    f"{reason} while holding {locks} — blocking under a "
                    "lock stalls every other thread contending for it; "
                    "move the call outside the critical section",
                )

    @staticmethod
    def _blocking_reason(call: ast.Call, held: frozenset) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "sleep":
                return "`sleep()`"
            if func.id == "open":
                return "`open()`"
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if (
                func.attr == "sleep"
                and isinstance(receiver, ast.Name)
                and receiver.id == "time"
            ):
                return "`time.sleep()`"
            if func.attr == "result":
                return "`Future.result()`"
            if func.attr == "join" and not call.args:
                return "`.join()`"
            if func.attr in ("wait", "acquire"):
                try:
                    text = ast.unparse(receiver)
                except Exception:
                    return None
                if text not in held:
                    return f"`{text}.{func.attr}()`"
        return None


# ---------------------------------------------------------------------------
# RL107 — shared-memory segments without a reachable close/unlink
# ---------------------------------------------------------------------------


class SharedMemoryLifecycleRule(Rule):
    id = "RL107"
    severity = Severity.ERROR
    description = "SharedMemory segment without a reachable close()/unlink()"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if self._segment_name(node.func) is None:
                continue
            creating = self._creates(node)
            required = {"close", "unlink"} if creating else {"close"}
            missing = self._missing_releases(node, parents, tree, required)
            if missing:
                verbs = "/".join(f"`.{name}()`" for name in sorted(missing))
                kind = "created" if creating else "attached"
                yield self.finding(
                    node,
                    path,
                    f"`SharedMemory` segment is {kind} here but no {verbs} "
                    "is reachable from this scope — a leaked POSIX segment "
                    "outlives the process (store it on `self` and release "
                    "it in a close method, or return it to the caller)",
                )

    @staticmethod
    def _segment_name(func: ast.expr) -> str | None:
        if isinstance(func, ast.Name) and func.id == "SharedMemory":
            return func.id
        if isinstance(func, ast.Attribute) and func.attr == "SharedMemory":
            return func.attr
        return None

    @staticmethod
    def _creates(node: ast.Call) -> bool:
        # ``create=True`` (or any non-literal-False value, conservatively)
        # means this process owns the segment and must unlink it too.
        for keyword in node.keywords:
            if keyword.arg == "create":
                value = keyword.value
                if isinstance(value, ast.Constant):
                    return bool(value.value)
                return True
        return False

    def _missing_releases(
        self, node: ast.Call, parents, tree: ast.Module, required: set[str]
    ) -> set[str]:
        chain = []
        cursor: ast.AST | None = node
        while cursor is not None:
            chain.append(cursor)
            cursor = parents.get(cursor)
        # Handing the segment to the caller transfers the obligation.
        if any(isinstance(link, ast.Return) for link in chain):
            return set()
        assigned_to_self = any(
            isinstance(link, (ast.Assign, ast.AnnAssign))
            and any(
                _self_attr(target) is not None
                for target in (
                    link.targets if isinstance(link, ast.Assign) else [link.target]
                )
            )
            for link in chain
        )
        functions = [
            link
            for link in chain
            if isinstance(link, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        scopes = list(functions)
        if assigned_to_self:
            scopes.extend(
                link for link in chain if isinstance(link, ast.ClassDef)
            )
        if not functions:
            scopes.append(tree)
        missing = set(required)
        for scope in scopes:
            missing -= self._releases_in(scope)
            if not missing:
                return set()
        return missing

    @staticmethod
    def _releases_in(scope: ast.AST) -> set[str]:
        found = set()
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "unlink")
            ):
                found.add(node.func.attr)
        return found


CONCURRENCY_RULES: tuple[Rule, ...] = (
    GuardedAccessRule(),
    CheckThenActRule(),
    LockOrderRule(),
    UnjoinedThreadRule(),
    BlockingCallUnderLockRule(),
    SharedMemoryLifecycleRule(),
)
