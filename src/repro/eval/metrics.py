"""Ranking metrics (Sec. IV-C).

* ``hit@k`` (Eq. 21): fraction of groups with at least one test positive
  in their top-k list.
* ``rec@k``: per-group fraction of test positives recovered in top-k,
  averaged over groups.
* ``ndcg@k`` and ``precision@k`` are provided as supplementary metrics
  (not reported in the paper's tables but standard in follow-up work).

All metrics consume a score vector over the candidate items and the set
of ground-truth positive items for one group, or operate in aggregate
via :func:`evaluate_rankings`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "top_k_items",
    "hit_at_k",
    "recall_at_k",
    "precision_at_k",
    "ndcg_at_k",
    "evaluate_rankings",
]


def top_k_items(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k highest-scoring items, best first.

    Ties break deterministically by item id (stable argsort on -scores).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    scores = np.asarray(scores, dtype=np.float64)
    order = np.argsort(-scores, kind="stable")
    return order[:k]


def hit_at_k(scores: np.ndarray, positives: set[int] | Sequence[int], k: int) -> float:
    """1.0 if any positive appears in the top-k, else 0.0."""
    positives = set(int(p) for p in positives)
    if not positives:
        return 0.0
    top = top_k_items(scores, k)
    return 1.0 if any(int(item) in positives for item in top) else 0.0


def recall_at_k(scores: np.ndarray, positives: set[int] | Sequence[int], k: int) -> float:
    """Fraction of the positives recovered in the top-k."""
    positives = set(int(p) for p in positives)
    if not positives:
        return 0.0
    top = top_k_items(scores, k)
    recovered = sum(1 for item in top if int(item) in positives)
    return recovered / len(positives)


def precision_at_k(scores: np.ndarray, positives: set[int] | Sequence[int], k: int) -> float:
    """Fraction of the top-k that are positives."""
    positives = set(int(p) for p in positives)
    top = top_k_items(scores, k)
    if len(top) == 0:
        return 0.0
    recovered = sum(1 for item in top if int(item) in positives)
    return recovered / len(top)


def ndcg_at_k(scores: np.ndarray, positives: set[int] | Sequence[int], k: int) -> float:
    """Normalized discounted cumulative gain with binary relevance."""
    positives = set(int(p) for p in positives)
    if not positives:
        return 0.0
    top = top_k_items(scores, k)
    dcg = sum(
        1.0 / np.log2(rank + 2.0)
        for rank, item in enumerate(top)
        if int(item) in positives
    )
    ideal_hits = min(len(positives), k)
    idcg = sum(1.0 / np.log2(rank + 2.0) for rank in range(ideal_hits))
    return float(dcg / idcg)


def evaluate_rankings(
    scores_by_group: Mapping[int, np.ndarray],
    positives_by_group: Mapping[int, Sequence[int]],
    k: int = 5,
) -> dict[str, float]:
    """Aggregate hit@k / rec@k / precision@k / ndcg@k over groups.

    Only groups present in ``positives_by_group`` with at least one
    positive are counted (the paper evaluates over test-set groups).
    """
    hits, recalls, precisions, ndcgs = [], [], [], []
    for group, positives in positives_by_group.items():
        positives = set(int(p) for p in positives)
        if not positives:
            continue
        scores = scores_by_group[group]
        hits.append(hit_at_k(scores, positives, k))
        recalls.append(recall_at_k(scores, positives, k))
        precisions.append(precision_at_k(scores, positives, k))
        ndcgs.append(ndcg_at_k(scores, positives, k))
    if not hits:
        raise ValueError("no group had test positives to evaluate")
    return {
        f"hit@{k}": float(np.mean(hits)),
        f"rec@{k}": float(np.mean(recalls)),
        f"precision@{k}": float(np.mean(precisions)),
        f"ndcg@{k}": float(np.mean(ndcgs)),
        "num_groups": len(hits),
    }
