"""Admission control: permits, queueing, shedding, HTTP 429 mapping."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    RecommendationServer,
    RecommendationService,
    ShedError,
)
from repro.serve.admission import build_controllers


class TestController:
    def test_admit_under_limit_is_immediate(self):
        controller = AdmissionController(AdmissionConfig(max_inflight=2))
        with controller.admit():
            assert controller.inflight == 1
            with controller.admit():
                assert controller.inflight == 2
        assert controller.inflight == 0
        assert controller.stats()["admitted_total"] == 2

    def test_queue_full_sheds_with_retry_after(self):
        controller = AdmissionController(
            AdmissionConfig(max_inflight=1, max_queue=0, retry_after_s=2.0)
        )
        with controller.admit():
            with pytest.raises(ShedError) as excinfo:
                controller.admit()
        error = excinfo.value
        assert error.status == 429
        assert error.reason == "queue_full"
        assert error.retry_after_header == "2"
        stats = controller.stats()
        assert stats["shed_queue_full"] == 1
        assert stats["shed_total"] == 1

    def test_queued_waiter_times_out(self):
        controller = AdmissionController(
            AdmissionConfig(max_inflight=1, max_queue=4, queue_timeout_ms=30.0)
        )
        with controller.admit():
            with pytest.raises(ShedError) as excinfo:
                controller.admit()
        assert excinfo.value.reason == "timeout"
        stats = controller.stats()
        assert stats["shed_timeout"] == 1
        assert stats["queued"] == 0  # the waiter left the queue

    def test_queued_waiter_is_admitted_after_release(self):
        controller = AdmissionController(
            AdmissionConfig(max_inflight=1, max_queue=4, queue_timeout_ms=5000.0)
        )
        first = controller.admit()
        admitted = threading.Event()

        def waiter():
            with controller.admit():
                admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        try:
            # The waiter is parked in the queue, not admitted yet.
            assert not admitted.wait(0.05)
            assert controller.queued == 1
            first.release()
            assert admitted.wait(5.0), "release did not wake the queued waiter"
        finally:
            thread.join(timeout=5.0)
        assert controller.stats()["admitted_total"] == 2

    def test_permit_release_is_idempotent(self):
        controller = AdmissionController(AdmissionConfig(max_inflight=1))
        permit = controller.admit()
        permit.release()
        permit.release()
        assert controller.inflight == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionConfig(queue_timeout_ms=-1.0)


class TestBuildControllers:
    def test_none_disables_admission(self):
        assert build_controllers(None) == {}

    def test_single_config_gates_every_scoring_endpoint(self):
        controllers = build_controllers(AdmissionConfig(max_inflight=3))
        assert set(controllers) == {"recommend", "explain"}

    def test_dict_form_gates_named_endpoints_only(self):
        controllers = build_controllers(
            {"recommend": AdmissionConfig(max_inflight=1)}
        )
        assert set(controllers) == {"recommend"}

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown admission endpoint"):
            build_controllers({"healthz": AdmissionConfig()})


@pytest.fixture()
def gated_service(index):
    svc = RecommendationService(
        index,
        deadline_ms=None,
        batch_wait_ms=0.0,
        admission=AdmissionConfig(max_inflight=1, max_queue=0, queue_timeout_ms=50.0),
    )
    yield svc
    svc.close()


class TestServiceIntegration:
    def test_saturated_endpoint_sheds_and_counts(self, gated_service):
        with gated_service.admission["recommend"].admit():
            with pytest.raises(ShedError):
                gated_service.recommend(0, k=3)
        stats = gated_service.stats()
        assert stats["shed"] == 1
        assert stats["admission"]["recommend"]["shed_total"] == 1
        assert (
            gated_service.metrics.get("serve/shed_total").value == 1.0
        )

    def test_endpoints_are_gated_independently(self, gated_service):
        # Saturating /recommend must not shed /explain.
        with gated_service.admission["recommend"].admit():
            payload = gated_service.explain(0, 1)
        assert payload["members"]

    def test_dict_admission_leaves_other_endpoints_ungated(self, index):
        svc = RecommendationService(
            index,
            deadline_ms=None,
            batch_wait_ms=0.0,
            admission={
                "recommend": AdmissionConfig(max_inflight=1, max_queue=0)
            },
        )
        try:
            assert set(svc.admission) == {"recommend"}
            # explain has no controller -> never sheds.
            assert svc.explain(0, 1)["members"]
        finally:
            svc.close()

    def test_admission_gauges_registered(self, gated_service):
        registry = gated_service.metrics
        with gated_service.admission["recommend"].admit():
            assert registry.get("serve/admission/recommend/inflight").value == 1.0
        assert registry.get("serve/admission/recommend/inflight").value == 0.0
        assert registry.get("serve/admission/recommend/queued").value == 0.0


class TestHTTP429:
    def test_shed_request_maps_to_429_with_retry_after(self, index):
        svc = RecommendationService(
            index,
            deadline_ms=None,
            batch_wait_ms=0.0,
            admission=AdmissionConfig(
                max_inflight=1, max_queue=0, queue_timeout_ms=50.0, retry_after_s=3.0
            ),
        )
        server = RecommendationServer(svc, port=0).start()
        try:
            # Hold the single permit from the test thread so the HTTP
            # request finds the endpoint saturated.
            with svc.admission["recommend"].admit():
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(
                        f"{server.url}/recommend?group=0&k=3", timeout=10
                    )
            error = excinfo.value
            assert error.code == 429
            assert error.headers["Retry-After"] == "3"
            body = json.loads(error.read().decode("utf-8"))
            assert body["reason"] == "queue_full"
            assert "error" in body
            # A shed is not a client error.
            assert svc.stats()["client_errors"] == 0
            assert svc.stats()["shed"] == 1
        finally:
            server.stop()

    def test_healthz_is_never_gated(self, index):
        svc = RecommendationService(
            index,
            deadline_ms=None,
            batch_wait_ms=0.0,
            admission=AdmissionConfig(max_inflight=1, max_queue=0),
        )
        server = RecommendationServer(svc, port=0).start()
        try:
            with svc.admission["recommend"].admit():
                with urllib.request.urlopen(
                    f"{server.url}/healthz", timeout=10
                ) as response:
                    assert response.status == 200
                    assert json.loads(response.read())["status"] == "ok"
        finally:
            server.stop()
