"""Runtime lockset detector tests.

The racy fixtures here are deliberately *unannotated* (fields are passed
explicitly to ``track``) so the repo-wide static self-lint stays clean;
annotation-driven tracking is exercised on the correctly-locked serve
classes instead.
"""

import threading

import pytest

from repro.analysis.racecheck import (
    AuditedLock,
    RaceDetector,
    held_locks,
    track,
    untrack,
)


class RacyCounter:
    """Shared counter with no locking at all."""

    def __init__(self):
        self.value = 0

    def bump(self):
        for _ in range(200):
            self.value += 1


class LockedCounter:
    """Same counter, every access under one lock."""

    def __init__(self):
        self.lock = threading.Lock()
        self.value = 0

    def bump(self):
        for _ in range(200):
            with self.lock:
                self.value += 1

    def read(self):
        with self.lock:
            return self.value


def hammer(target, threads=4):
    workers = [threading.Thread(target=target) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


class TestAuditedLock:
    def test_held_set_tracks_acquire_release(self):
        lock = AuditedLock("test")
        assert lock not in held_locks()
        with lock:
            assert lock in held_locks()
        assert lock not in held_locks()

    def test_rlock_refcount(self):
        lock = AuditedLock("re", inner=threading.RLock())
        with lock:
            with lock:
                assert lock in held_locks()
            assert lock in held_locks()
        assert lock not in held_locks()

    def test_locked_and_nonblocking(self):
        lock = AuditedLock("nb")
        assert lock.acquire(blocking=False)
        assert lock.locked()
        assert held_locks() == (lock,)
        lock.release()
        assert not lock.locked()

    def test_held_set_is_per_thread(self):
        lock = AuditedLock("mine")
        seen = []
        with lock:
            other = threading.Thread(target=lambda: seen.append(held_locks()))
            other.start()
            # Joining while held is the point here: the other thread must
            # see an empty held-set even while we hold the lock.
            other.join()  # repro-lint: disable=RL105
        assert seen == [()]


class TestDetector:
    def test_racy_counter_flagged_with_both_stacks(self):
        counter = RacyCounter()
        with RaceDetector(capture_stacks=True) as detector:
            detector.track(counter, fields=["value"])
            hammer(counter.bump)
        assert not detector.ok
        [violation] = detector.violations
        assert violation.owner == "RacyCounter"
        assert violation.field == "value"
        assert "lockset is empty" in violation.message
        assert "bump" in violation.current.stack
        assert violation.previous is not None
        rendered = violation.render()
        assert "racing access" in rendered
        assert "previous access" in rendered

    def test_locked_twin_clean(self):
        counter = LockedCounter()
        with RaceDetector() as detector:
            detector.track(counter, fields=["value"])
            hammer(counter.bump)
            assert counter.read() == 4 * 200
        assert detector.ok
        assert detector.report() == "racecheck: no violations"

    def test_read_only_sharing_clean(self):
        counter = RacyCounter()
        counter.value = 42
        reads = []
        with RaceDetector() as detector:
            detector.track(counter, fields=["value"])
            hammer(lambda: reads.append(counter.value))
        assert detector.ok
        assert reads == [42] * 4

    def test_init_phase_unlocked_writes_clean(self):
        counter = RacyCounter()
        with RaceDetector() as detector:
            detector.track(counter, fields=["value"])
            counter.bump()  # single thread, no lock: allowed
            counter.bump()
        assert detector.ok

    def test_violation_reported_once_per_field(self):
        counter = RacyCounter()
        with RaceDetector() as detector:
            detector.track(counter, fields=["value"])
            hammer(counter.bump, threads=8)
        assert len(detector.violations) == 1

    def test_track_requires_fields_or_annotations(self):
        with RaceDetector() as detector:
            with pytest.raises(ValueError, match="guarded-by"):
                detector.track(RacyCounter())

    def test_pristine_class_restored(self):
        counter = LockedCounter()
        with RaceDetector() as detector:
            detector.track(counter, fields=["value"])
            assert type(counter) is not LockedCounter
            assert getattr(type(counter), "__racecheck_tracked__", False)
        assert type(counter) is LockedCounter
        assert "__racecheck_tracked__" not in type(counter).__dict__

    def test_untrack_idempotent(self):
        counter = LockedCounter()
        with RaceDetector() as detector:
            detector.track(counter, fields=["value"])
            detector.untrack(counter)
            detector.untrack(counter)
            assert type(counter) is LockedCounter

    def test_track_idempotent(self):
        counter = LockedCounter()
        with RaceDetector() as detector:
            detector.track(counter, fields=["value"])
            tracked_cls = type(counter)
            detector.track(counter, fields=["value"])
            assert type(counter) is tracked_cls

    def test_module_level_track_requires_active_detector(self):
        with pytest.raises(RuntimeError, match="no active RaceDetector"):
            track(LockedCounter(), fields=["value"])

    def test_module_level_track_uses_innermost_detector(self):
        counter = LockedCounter()
        with RaceDetector() as detector:
            assert track(counter, fields=["value"]) is counter
            assert type(counter) is not LockedCounter
            untrack(counter)
            assert type(counter) is LockedCounter
            assert detector.ok


class TestAnnotationDrivenTracking:
    def test_score_cache_fields_auto_selected(self):
        from repro.serve.cache import ScoreCache

        cache = ScoreCache(capacity=8)
        with RaceDetector() as detector:
            detector.track(cache)

            def worker():
                for i in range(100):
                    cache.put(("g", i % 16), i)
                    cache.get(("g", (i + 3) % 16))
                    cache.stats()

            hammer(worker)
        assert detector.ok, detector.report()

    def test_circuit_breaker_clean_under_stress(self):
        from repro.serve.fallback import CircuitBreaker

        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=0.001)
        with RaceDetector() as detector:
            detector.track(breaker)

            def worker():
                for i in range(100):
                    breaker.allow()
                    if i % 7 == 0:
                        breaker.record_failure()
                    else:
                        breaker.record_success()
                    _ = breaker.state, breaker.trips

            hammer(worker)
        assert detector.ok, detector.report()

    def test_microbatcher_condition_is_rebuilt_audited(self):
        from repro.serve.engine import MicroBatcher
        from repro.analysis.race_smoke import _StubEngine

        batcher = MicroBatcher(_StubEngine(), max_wait_ms=0.1, max_batch=4)
        with RaceDetector() as detector:
            detector.track(batcher)
            assert isinstance(batcher._condition._lock, AuditedLock)

            def worker():
                for i in range(50):
                    batcher.scores_for_group(i % 8)

            hammer(worker)
            batcher.close()
        assert detector.ok, detector.report()
        # Waiters released through the audited condition left no residue.
        assert held_locks() == ()
