#!/usr/bin/env python
"""Executable documentation gate: links resolve, examples run, names exist.

Checks, over ``README.md`` and every ``docs/*.md``:

1. **intra-repo links** — every ``[text](target)`` whose target is not an
   external URL or a pure anchor must resolve to a real file or directory
   (relative to the markdown file; ``#fragment`` suffixes are stripped);
2. **runnable fences** — every ```` ```python ```` fence whose first line
   is ``# doctest: run`` is executed in a subprocess with ``src`` on
   ``PYTHONPATH``; a non-zero exit fails the check (stdout is discarded,
   stderr is reported);
3. **module references** — every ``python -m <module>`` mention must name
   an importable module (guards against renamed entry points);
4. **make targets** — every ``make <target>`` mention must exist in the
   Makefile.

Run via ``make docs-check`` or ``python tools/check_docs.py``; exit code
0 iff all checks pass.  Part of the tier-1 gate through
``tests/test_docs.py``.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = [
    "collect_markdown",
    "check_links",
    "check_runnable_fences",
    "check_module_references",
    "check_make_targets",
    "main",
]

RUN_MARKER = "# doctest: run"
LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")
MODULE_RE = re.compile(r"python(?:3)? -m ([A-Za-z_][A-Za-z0-9_.]*)")
MAKE_RE = re.compile(r"\bmake ([A-Za-z][A-Za-z0-9_-]*)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def collect_markdown(root: Path) -> list[Path]:
    """README plus docs/*.md, in deterministic order."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def _fences(text: str) -> list[tuple[int, str, str]]:
    """``(start_line, language, body)`` for every fenced code block."""
    fences = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        match = FENCE_RE.match(lines[index])
        if match:
            language = match.group(1)
            body_start = index + 1
            index += 1
            while index < len(lines) and not lines[index].startswith("```"):
                index += 1
            fences.append(
                (body_start + 1, language, "\n".join(lines[body_start:index]))
            )
        index += 1
    return fences


def _strip_fences(text: str) -> str:
    """Markdown with fenced code bodies blanked (links in code are literal)."""
    out = []
    in_fence = False
    for line in text.splitlines():
        if line.startswith("```"):
            in_fence = not in_fence
            out.append("")
        else:
            out.append("" if in_fence else line)
    return "\n".join(out)


def check_links(path: Path, root: Path) -> list[str]:
    """Broken intra-repo link targets in one markdown file."""
    problems = []
    for target in LINK_RE.findall(_strip_fences(path.read_text())):
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(
                f"{path.relative_to(root)}: broken link -> {target}"
            )
    return problems


def check_runnable_fences(path: Path, root: Path) -> list[str]:
    """Execute every python fence marked with ``# doctest: run``."""
    problems = []
    for line, language, body in _fences(path.read_text()):
        if language != "python" or not body.lstrip().startswith(RUN_MARKER):
            continue
        with tempfile.NamedTemporaryFile(
            "w", suffix=".py", delete=False
        ) as script:
            script.write(body)
            script_path = script.name
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        try:
            result = subprocess.run(
                [sys.executable, script_path],
                cwd=root,
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
            if result.returncode != 0:
                tail = result.stderr.strip().splitlines()[-3:]
                problems.append(
                    f"{path.relative_to(root)}:{line}: runnable fence failed "
                    f"(exit {result.returncode}): " + " | ".join(tail)
                )
        finally:
            os.unlink(script_path)
    return problems


def check_module_references(path: Path, root: Path) -> list[str]:
    """Every ``python -m X`` mention must be an importable module."""
    import importlib.util

    problems = []
    seen = set()
    for module in MODULE_RE.findall(path.read_text()):
        if module in seen:
            continue
        seen.add(module)
        sys.path.insert(0, str(root / "src"))
        try:
            spec = importlib.util.find_spec(module)
        except (ImportError, ValueError):
            spec = None
        finally:
            sys.path.pop(0)
        if spec is None:
            problems.append(
                f"{path.relative_to(root)}: python -m {module} "
                "names a module that does not exist"
            )
    return problems


def _makefile_targets(root: Path) -> set[str]:
    makefile = root / "Makefile"
    if not makefile.exists():
        return set()
    return {
        match.group(1)
        for match in re.finditer(
            r"^([A-Za-z][A-Za-z0-9_-]*):", makefile.read_text(), re.MULTILINE
        )
    }


def check_make_targets(path: Path, root: Path) -> list[str]:
    """Every ``make X`` mention must exist in the Makefile."""
    targets = _makefile_targets(root)
    problems = []
    for target in set(MAKE_RE.findall(path.read_text())):
        if target not in targets:
            problems.append(
                f"{path.relative_to(root)}: make {target} "
                "is not a Makefile target"
            )
    return problems


def run_checks(root: Path, execute: bool = True) -> list[str]:
    """All problems across all markdown files (empty list = clean)."""
    problems: list[str] = []
    for path in collect_markdown(root):
        problems.extend(check_links(path, root))
        problems.extend(check_module_references(path, root))
        problems.extend(check_make_targets(path, root))
        if execute:
            problems.extend(check_runnable_fences(path, root))
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Check docs: links resolve, runnable fences execute, "
        "referenced modules and make targets exist."
    )
    parser.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent),
        help="repository root (default: the repo containing this script)",
    )
    parser.add_argument(
        "--no-execute",
        action="store_true",
        help="skip executing runnable fences (links/names only)",
    )
    args = parser.parse_args(argv)
    root = Path(args.root).resolve()
    problems = run_checks(root, execute=not args.no_execute)
    for problem in problems:
        print(problem)
    files = len(collect_markdown(root))
    if problems:
        print(f"docs-check: {len(problems)} problem(s) across {files} file(s)")
        return 1
    print(f"docs-check: OK ({files} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
