"""Op-level cost report: ``python -m repro.obs.report``.

Builds a small synthetic KGAG instance, trains it for ``--epochs``
epochs under the :class:`~repro.obs.profiler.TapeProfiler` (per-op
time/bytes) and a :class:`~repro.obs.trace.Tracer` (per-phase spans),
with a live :class:`~repro.obs.metrics.MetricsRegistry` wired into the
trainer, then prints:

* the top-N op table (forward/backward ms, bytes, share of total) —
  the Eqs. 2-8 propagation and Eqs. 9-14 attention hot paths ranked by
  measured cost;
* the span tree and per-phase breakdown;
* the registry's plain-text snapshot (loss / grad-norm / timing);
* a coverage line: the op table's attributed time as a fraction of the
  profiled region's wall time.

Exit code 0 iff the op table accounts for at least 90% of the profiled
wall time (the attribution contract of the profiler); 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

import numpy as np

from ..core import KGAG, KGAGConfig, KGAGTrainer
from ..core.diagnostics import DiagnosticsRecorder
from ..data import MovieLensLikeConfig, movielens_like
from ..data.splits import split_interactions
from .metrics import MetricsRegistry
from .profiler import TapeProfiler
from .trace import Tracer

__all__ = ["build_toy_trainer", "run_report", "main"]

COVERAGE_TARGET = 0.90


def build_toy_trainer(seed: int = 0, metrics=None, run_log=None) -> KGAGTrainer:
    """A 1-minute-scale KGAG trainer on a tiny synthetic dataset."""
    config = KGAGConfig(
        embedding_dim=8,
        num_layers=1,
        num_neighbors=3,
        epochs=1,
        batch_size=64,
        patience=0,
        seed=seed,
    )
    dataset = movielens_like(
        "rand",
        MovieLensLikeConfig(num_users=30, num_items=40, num_groups=12, seed=seed),
    )
    split = split_interactions(dataset.group_item, rng=np.random.default_rng(seed))
    model = KGAG(
        dataset.kg,
        dataset.num_users,
        dataset.num_items,
        dataset.user_item.pairs,
        dataset.groups,
        config,
    )
    probe = split.train.pairs[: min(32, len(split.train.pairs))]
    diagnostics = DiagnosticsRecorder(model, probe[:, 0], probe[:, 1])
    return KGAGTrainer(
        model,
        split.train,
        dataset.user_item,
        split.validation,
        metrics=metrics,
        run_log=run_log,
        diagnostics=diagnostics,
    )


def run_report(
    seed: int = 0, epochs: int = 1, top: int = 15, stream=None
) -> int:
    """Profile a toy training run and print the report; returns exit code."""
    stream = stream or sys.stdout

    def emit(line: str = "") -> None:
        print(line, file=stream)

    emit("repro.obs.report — per-op cost of a KGAG training step")
    emit(f"seed: {seed}  epochs: {epochs}")

    registry = MetricsRegistry()
    trainer = build_toy_trainer(seed=seed, metrics=registry)
    tracer = Tracer()
    profiler = TapeProfiler()

    wall_start = time.perf_counter()
    with tracer.span("train"):
        with profiler:
            for epoch in range(epochs):
                with tracer.span(f"epoch[{epoch}]"):
                    trainer.train_epoch()
    measured_wall = time.perf_counter() - wall_start

    emit()
    emit(profiler.table(top=top))
    emit()
    emit(tracer.render())
    emit()
    emit("phase breakdown (inclusive / self, ms):")
    for name, entry in tracer.breakdown().items():
        emit(
            f"  {name:<12}  calls {entry['calls']:>3}  "
            f"total {entry['total'] * 1e3:10.3f}  self {entry['self'] * 1e3:10.3f}"
        )
    emit()
    emit("metrics snapshot:")
    for line in registry.render_text().rstrip("\n").splitlines():
        emit("  " + line)

    coverage = profiler.coverage
    span_total = tracer.total()
    emit()
    emit(
        f"wall time: measured {measured_wall * 1e3:.3f} ms, "
        f"span total {span_total * 1e3:.3f} ms, "
        f"op-attributed {profiler.attributed_seconds * 1e3:.3f} ms"
    )
    ok = coverage >= COVERAGE_TARGET
    emit(
        f"attribution coverage: {coverage * 100:.1f}% of profiled wall "
        f"(target >= {COVERAGE_TARGET * 100:.0f}%) — {'OK' if ok else 'LOW'}"
    )
    return 0 if ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Profile a toy KGAG training run: top-N op table, "
        "span breakdown, metrics snapshot.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--epochs", type=int, default=1)
    parser.add_argument("--top", type=int, default=15)
    args = parser.parse_args(argv)
    return run_report(seed=args.seed, epochs=args.epochs, top=args.top)


if __name__ == "__main__":
    sys.exit(main())
