"""Multi-process serving smoke drill: pool correctness under a load burst.

Run as ``python -m repro.serve.load_smoke`` (the ``make load-smoke``
target, part of ``make verify``).  The drill:

1. builds a tiny index artifact and computes single-process reference
   answers from it;
2. starts a 2-worker :class:`~repro.serve.pool.ServingPool` (mmap-shared
   index) with deliberately tight admission limits
   (``max_inflight=1, max_queue=0``);
3. asserts serial requests are admitted and match the single-process
   answers, and that ``/healthz`` reports the pool honestly;
4. fires a bounded concurrent burst and asserts the overflow was shed
   with ``429`` + ``Retry-After`` while admitted requests still
   succeeded, and that the fleet counters agree;
5. hot-swaps the pool onto a second artifact and asserts the new
   version serves;
6. closes the pool and asserts **zero leaked worker processes**.

Exit code 0 means multi-process serving, admission control and the
coordinated hot-swap are wired correctly end to end.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path

__all__ = ["run_load_smoke", "main"]


def _get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        payload = json.loads(response.read().decode("utf-8"))
    if not isinstance(payload, dict):
        raise AssertionError(f"{url} did not return a JSON object")
    return payload


def _burst(url: str, threads: int, per_thread: int) -> list[tuple[int, str, dict]]:
    """Fire a concurrent GET burst; returns (status, body, headers) triples."""
    results: list[tuple[int, str, dict]] = []
    results_lock = threading.Lock()

    def client() -> None:
        for _ in range(per_thread):
            try:
                with urllib.request.urlopen(url, timeout=10) as response:
                    record = (
                        response.status,
                        response.read().decode("utf-8"),
                        dict(response.headers),
                    )
            except urllib.error.HTTPError as error:
                record = (
                    error.code,
                    error.read().decode("utf-8"),
                    dict(error.headers),
                )
            with results_lock:
                results.append(record)

    workers = [threading.Thread(target=client) for _ in range(threads)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    return results


def run_load_smoke(verbose: bool = True) -> dict:
    """Build + pool-serve + burst + swap + close; returns the evidence."""
    import multiprocessing

    from ..core import KGAG, KGAGConfig
    from ..data import MovieLensLikeConfig, movielens_like, split_interactions
    from ..rng import ensure_rng
    from .admission import AdmissionConfig
    from .index import EmbeddingIndex, build_index
    from .pool import ServingPool
    from .server import RecommendationService

    dataset = movielens_like(
        "rand",
        MovieLensLikeConfig(num_users=30, num_items=64, num_groups=16, seed=7),
    )
    split = split_interactions(dataset.group_item, rng=ensure_rng(7))
    model = KGAG(
        dataset.kg,
        dataset.num_users,
        dataset.num_items,
        dataset.user_item.pairs,
        dataset.groups,
        KGAGConfig(
            embedding_dim=8,
            num_layers=1,
            num_neighbors=2,
            seed=7,
            uniform_neighbor_weights=True,
        ),
    )
    index = build_index(
        model, train_interactions=split.train, user_interactions=dataset.user_item
    )
    # A second artifact with a different fingerprint (no seen-item mask)
    # for the pool-wide hot-swap leg.
    swapped = build_index(model, user_interactions=dataset.user_item)
    assert swapped.version != index.version

    with tempfile.TemporaryDirectory() as tmp:
        artifact = index.save(Path(tmp) / "index.npz")
        swap_artifact = swapped.save(Path(tmp) / "index2.npz")

        # Single-process reference answers, computed from the *same*
        # artifact in the same (mmap) mode the workers use — deadline
        # disabled so the answers are deterministic.
        reference_service = RecommendationService(
            EmbeddingIndex.load(artifact, mmap=True),
            cache_capacity=0,
            deadline_ms=None,
            batch_wait_ms=0.0,
        )
        try:
            reference = {
                group: reference_service.recommend(group, k=5)["items"]
                for group in range(index.num_groups)
            }
        finally:
            reference_service.close()

        pool = ServingPool(
            artifact,
            workers=2,
            monitor_interval=0.05,
            # A non-zero batching window gives every admitted request a
            # real service time (the coalescing wait), so the burst
            # below actually contends for the single in-flight permit.
            # Batching never changes scores, so answers still match the
            # unbatched reference.
            # (Caching is off so the burst can't short-circuit through
            # warmed entries; the coordinated-retire path has its own
            # tests.)
            service_config=dict(
                cache_capacity=0,
                deadline_ms=None,
                batch_wait_ms=5.0,
                scorer_threads=2,
            ),
            admission=AdmissionConfig(
                max_inflight=1, max_queue=0, queue_timeout_ms=50.0, retry_after_s=1.0
            ),
        )
        try:
            assert pool.alive_workers() == 2, pool.alive_workers()

            # 1) Serial requests fit inside max_inflight=1 and must match
            #    the single-process engine.
            for group in range(index.num_groups):
                payload = _get_json(f"{pool.url}/recommend?group={group}&k=5")
                assert payload["index_version"] == index.version, payload
                assert payload["items"] == reference[group], (
                    group,
                    payload["items"],
                    reference[group],
                )

            health = _get_json(f"{pool.url}/healthz")
            assert health["status"] == "ok", health
            assert health["pool"]["alive"] == 2, health

            # 2) Bounded burst: 8 concurrent clients against
            #    max_inflight=1/no queue per worker must shed some
            #    requests and serve others.
            burst = _burst(f"{pool.url}/recommend?group=1&k=5", threads=8, per_thread=3)
            served = [r for r in burst if r[0] == 200]
            shed = [r for r in burst if r[0] == 429]
            assert len(served) + len(shed) == len(burst), burst
            assert served, "burst produced no successful responses"
            assert shed, "burst produced no 429s despite max_inflight=1"
            for status, body, headers in shed:
                retry_after = headers.get("Retry-After")
                assert retry_after and int(retry_after) >= 1, headers
                assert "error" in json.loads(body), body
            for status, body, headers in served:
                assert json.loads(body)["items"] == reference[1], body

            stats = pool.stats()
            aggregate = stats["aggregate"]
            assert aggregate["responding"] == 2, aggregate
            assert aggregate["shed"] >= len(shed), (aggregate, len(shed))
            assert aggregate["requests"] >= index.num_groups + len(served), aggregate

            # 3) Coordinated hot-swap: every worker acks the new version.
            report = pool.reload(swap_artifact)
            assert report["new_version"] == swapped.version, report
            assert report["workers"] == 2, report
            after = _get_json(f"{pool.url}/recommend?group=1&k=5")
            assert after["index_version"] == swapped.version, after

            pids = pool.worker_pids()
        finally:
            pool.close()

        # 4) Zero leaked worker processes.
        leaked = multiprocessing.active_children()
        assert not leaked, f"leaked worker processes: {leaked}"
        for pid in pids:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            raise AssertionError(f"worker pid {pid} survived pool.close()")

    evidence = {
        "served": len(served),
        "shed": len(shed),
        "aggregate": aggregate,
        "swap": report,
    }
    if verbose:
        print(
            f"load-smoke OK — 2 workers on one mmap'd index: "
            f"{len(served)} served, {len(shed)} shed with Retry-After, "
            f"hot-swap {report['old_version']} -> {report['new_version']}, "
            f"0 leaked processes"
        )
    return evidence


def main(argv=None) -> int:
    """CLI entry point for ``python -m repro.serve.load_smoke``."""
    run_load_smoke(verbose=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
