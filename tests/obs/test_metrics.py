"""Instrument semantics: counters, gauges, histograms, registry, run log."""

import io
import json
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    JsonlRunLog,
    MetricsRegistry,
    NULL_REGISTRY,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = Counter("c")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1.0)

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter("c")
        increments_per_thread = 5000

        def worker():
            for _ in range(increments_per_thread):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8 * increments_per_thread


class TestGauge:
    def test_set_and_read(self):
        gauge = Gauge("g")
        gauge.set(4.2)
        assert gauge.value == 4.2

    def test_callback_mode_reads_live_value(self):
        state = {"v": 1.0}
        gauge = Gauge("g", fn=lambda: state["v"])
        assert gauge.value == 1.0
        state["v"] = 7.0
        assert gauge.value == 7.0

    def test_set_on_callback_gauge_raises(self):
        gauge = Gauge("g", fn=lambda: 0.0)
        with pytest.raises(ValueError, match="callback-backed"):
            gauge.set(1.0)


class TestHistogram:
    def test_bucket_edges_are_upper_inclusive(self):
        # Prometheus `le` semantics: v lands in the first bucket v <= edge.
        hist = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 5.0, 99.0):
            hist.observe(value)
        # buckets: <=1.0 gets {0.5, 1.0}; <=2.0 gets {1.5, 2.0};
        # <=5.0 gets {5.0}; +Inf gets {99.0}.
        assert hist.bucket_counts() == [2, 2, 1, 1]
        assert hist.cumulative_buckets() == [
            (1.0, 2),
            (2.0, 4),
            (5.0, 5),
            (float("inf"), 6),
        ]

    def test_edges_must_be_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", buckets=())

    def test_count_sum_mean(self):
        hist = Histogram("h", buckets=(10.0,))
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 6.0
        assert hist.mean == 2.0

    def test_percentile_matches_serving_nearest_rank_formula(self):
        # The historical /stats formula: rank = min(n-1, round(q*(n-1))).
        hist = Histogram("h", buckets=(1000.0,))
        samples = [float(v) for v in range(1, 101)]
        for value in samples:
            hist.observe(value)
        ordered = sorted(samples)

        def expected(q):
            rank = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
            return ordered[rank]

        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.percentile(q) == expected(q)

    def test_percentile_empty_window_is_zero(self):
        assert Histogram("h", buckets=(1.0,)).percentile(0.5) == 0.0
        no_window = Histogram("h", buckets=(1.0,), sample_window=0)
        no_window.observe(3.0)
        assert no_window.percentile(0.5) == 0.0

    def test_sample_window_is_bounded(self):
        hist = Histogram("h", buckets=(1e9,), sample_window=4)
        for value in range(100):
            hist.observe(float(value))
        # Only the 4 most recent samples remain: 96..99.
        assert hist.percentile(0.0) == 96.0
        assert hist.count == 100  # bucket counts are not windowed


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_covers_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(1.5)
        registry.histogram("c", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["a"]["value"] == 2
        assert snapshot["b"]["value"] == 1.5
        assert snapshot["c"]["count"] == 1

    def test_render_text_sanitizes_names_and_expands_histograms(self):
        registry = MetricsRegistry()
        registry.counter("serve/requests_total", help="total").inc(3)
        registry.histogram("lat-ms", buckets=(1.0,)).observe(0.5)
        text = registry.render_text()
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 3" in text
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="+Inf"} 1' in text
        assert "lat_ms_count 1" in text

    def test_null_registry_is_disabled_and_inert(self):
        assert NULL_REGISTRY.enabled is False
        counter = NULL_REGISTRY.counter("x")
        counter.inc()
        assert counter.value == 0.0
        hist = NULL_REGISTRY.histogram("y")
        hist.observe(1.0)
        assert hist.percentile(0.5) == 0.0
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.render_text() == ""
        # All getters hand out the same shared no-op singleton.
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.gauge("b")


class TestJsonlRunLog:
    def test_records_carry_kind_seq_ts(self):
        buffer = io.StringIO()
        clock = iter(float(t) for t in range(10))
        log = JsonlRunLog(buffer, clock=lambda: next(clock))
        log.emit("epoch", epoch=0, loss=0.5)
        log.emit("epoch", epoch=1, loss=0.4)
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert [r["kind"] for r in records] == ["epoch", "epoch"]
        assert [r["seq"] for r in records] == [0, 1]
        assert [r["ts"] for r in records] == [0.0, 1.0]
        assert records[1]["loss"] == 0.4

    def test_emit_snapshot_embeds_registry_state(self):
        registry = MetricsRegistry()
        registry.counter("steps").inc(7)
        buffer = io.StringIO()
        JsonlRunLog(buffer).emit_snapshot(registry, kind="final_metrics")
        record = json.loads(buffer.getvalue())
        assert record["kind"] == "final_metrics"
        assert record["metrics"]["steps"]["value"] == 7

    def test_file_path_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlRunLog(path) as log:
            log.emit("epoch", epoch=0)
        assert json.loads(path.read_text())["epoch"] == 0


class TestMergeSnapshots:
    """Fleet aggregation: per-process snapshots -> one merged view."""

    @staticmethod
    def _snapshot(requests, latencies):
        registry = MetricsRegistry()
        registry.counter("requests").inc(requests)
        registry.gauge("load").set(float(requests))
        hist = registry.histogram("latency", buckets=(1.0, 5.0, 10.0))
        for value in latencies:
            hist.observe(value)
        return registry.snapshot()

    def test_counters_and_gauges_sum(self):
        from repro.obs import merge_snapshots

        merged = merge_snapshots(
            [self._snapshot(3, []), self._snapshot(4, [])]
        )
        assert merged["requests"]["value"] == 7
        assert merged["load"]["value"] == 7.0

    def test_histograms_merge_count_sum_and_cumulative_buckets(self):
        from repro.obs import merge_snapshots

        merged = merge_snapshots(
            [
                self._snapshot(0, [0.5, 3.0]),
                self._snapshot(0, [0.5, 99.0]),
            ]
        )
        record = merged["latency"]
        assert record["count"] == 4
        assert record["sum"] == pytest.approx(103.0)
        # Cumulative counts stay cumulative under element-wise addition.
        assert record["buckets"]["1.0"] == 2
        assert record["buckets"]["5.0"] == 3
        assert record["buckets"]["10.0"] == 3
        assert record["buckets"]["+Inf"] == 4

    def test_mixed_kinds_rejected(self):
        from repro.obs import merge_snapshots

        a = MetricsRegistry()
        a.counter("x").inc()
        b = MetricsRegistry()
        b.gauge("x").set(1.0)
        with pytest.raises(ValueError, match="mixed kinds"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_empty_input_merges_to_empty(self):
        from repro.obs import merge_snapshots

        assert merge_snapshots([]) == {}
        assert merge_snapshots([{}, {}]) == {}


class TestQuantileFromSnapshot:
    @staticmethod
    def _record(latencies):
        registry = MetricsRegistry()
        hist = registry.histogram("latency", buckets=(1.0, 5.0, 10.0))
        for value in latencies:
            hist.observe(value)
        return registry.snapshot()["latency"]

    def test_returns_covering_bucket_upper_edge(self):
        from repro.obs import quantile_from_snapshot

        record = self._record([0.5, 0.7, 3.0, 4.0])
        assert quantile_from_snapshot(record, 0.50) == 1.0
        assert quantile_from_snapshot(record, 0.99) == 5.0

    def test_overflow_bucket_reports_largest_finite_edge(self):
        from repro.obs import quantile_from_snapshot

        record = self._record([99.0, 250.0])
        assert quantile_from_snapshot(record, 0.99) == 10.0

    def test_empty_or_foreign_records_report_zero(self):
        from repro.obs import quantile_from_snapshot

        assert quantile_from_snapshot({}, 0.5) == 0.0
        assert quantile_from_snapshot(self._record([]), 0.5) == 0.0
        counter_record = {"kind": "counter", "value": 3}
        assert quantile_from_snapshot(counter_record, 0.5) == 0.0

    def test_quantile_range_validated(self):
        from repro.obs import quantile_from_snapshot

        with pytest.raises(ValueError, match="quantile"):
            quantile_from_snapshot(self._record([1.0]), 1.5)

    def test_merged_snapshot_feeds_quantiles_directly(self):
        from repro.obs import merge_snapshots, quantile_from_snapshot

        merged = merge_snapshots(
            [self._wrap([0.5] * 9), self._wrap([7.0])]
        )
        assert quantile_from_snapshot(merged["latency"], 0.50) == 1.0
        assert quantile_from_snapshot(merged["latency"], 0.99) == 10.0

    @classmethod
    def _wrap(cls, latencies):
        return {"latency": cls._record(latencies)}
