"""Embedding-table growth: move a :class:`TrainState` to a grown vocabulary.

The delta path renumbers entities (see :mod:`repro.stream.delta`), so a
checkpoint captured before a delta indexes embedding rows — and Adam
moment rows — by ids that no longer exist.  :func:`grow_state` rebuilds
the state for the grown layout:

* every surviving row is *moved*, not recomputed: old entity row ``e``
  lands at ``plan.ckg_entity_remap()[e]`` with its weights, its Adam
  ``m``/``v`` moments and its best-snapshot value byte-for-byte intact;
* brand-new rows are initialized from a :mod:`repro.rng` stream with the
  same ``N(0, 0.1)`` law as fresh :class:`~repro.nn.layers.Embedding`
  tables (``init="rng"``), or from the mean of their already-known
  collaborative-KG neighbors (``init="neighbor_mean"`` — a cold-start
  prior: a new item described by known attributes starts near them);
* new rows get *zero* Adam moments, exactly like rows an optimizer has
  never stepped.

For an identity plan (a delta that grew nothing) the output is bit-exact
with the input under ``np.array_equal`` — the warm-start equivalence
test pins this.  :func:`warm_start` packages the full loop: build the
grown model, grow the state, restore it into a fresh trainer; because
``KGAGTrainer.fit`` would restore the *pre-delta* best snapshot at the
end, fine-tuning runs through :func:`finetune` (plain ``train_epoch``
calls) instead.
"""

from __future__ import annotations

import copy
import dataclasses

import numpy as np

from ..core.checkpoint import TrainState
from ..core.config import KGAGConfig
from ..core.model import KGAG
from ..core.trainer import KGAGTrainer
from ..data.interactions import InteractionTable
from ..nn.serialization import CheckpointError
from ..rng import ensure_rng
from .delta import GrowthPlan

__all__ = [
    "GROW_INITS",
    "EMBEDDING_INIT_STD",
    "parameter_order",
    "grow_state",
    "warm_start",
    "finetune",
]

GROW_INITS = ("rng", "neighbor_mean")

# Fresh-row law, matching repro.nn.init.normal's default used by Embedding.
EMBEDDING_INIT_STD = 0.1

_ENTITY_TABLE = "propagation.entity_embedding.weight"
_RELATION_TABLE = "propagation.relation_embedding.weight"


def parameter_order(model) -> list[str]:
    """Parameter names in optimizer-buffer order.

    ``Adam(model.parameters())`` keeps its ``m``/``v`` buffer lists in
    ``named_parameters()`` iteration order, but a saved
    :class:`TrainState` only records the *sorted* name set — so growing
    the optimizer buffers needs this explicit order from a freshly built
    model of the same architecture.
    """
    return [name for name, _ in model.named_parameters()]


def _grown_rows(
    table: np.ndarray,
    new_num_rows: int,
    remap: np.ndarray,
    fresh_rows: np.ndarray | None,
) -> np.ndarray:
    """Scatter ``table``'s rows through ``remap``; fill the rest.

    ``fresh_rows`` must cover the new row indices in sorted order; None
    fills with zeros (the optimizer-moment case).
    """
    grown = np.zeros((new_num_rows,) + table.shape[1:], dtype=table.dtype)
    grown[remap] = table
    if fresh_rows is not None:
        new_rows = np.setdiff1d(np.arange(new_num_rows), remap)
        grown[new_rows] = fresh_rows
    return grown


def _fresh_entity_rows(
    plan: GrowthPlan,
    dim: int,
    init: str,
    rng: np.random.Generator,
    old_table: np.ndarray,
    ckg,
) -> np.ndarray:
    """Initial values for entity rows that did not exist before the delta."""
    new_rows = plan.new_entity_rows()
    drawn = rng.normal(0.0, EMBEDDING_INIT_STD, size=(len(new_rows), dim))
    drawn = drawn.astype(old_table.dtype)
    if init == "rng" or not len(new_rows):
        return drawn
    if ckg is None:
        raise ValueError("init='neighbor_mean' needs the grown collaborative KG")
    if ckg.num_entities != plan.new_ckg_entities:
        raise ValueError(
            f"grown collaborative KG has {ckg.num_entities} entities, "
            f"plan expects {plan.new_ckg_entities}"
        )
    # Old rows already sit at their new indices after the scatter; a new
    # row averages its neighbors that carry pre-delta knowledge.  A new
    # entity with only new neighbors keeps its rng draw.
    remap = plan.ckg_entity_remap()
    old_at = np.full(plan.new_ckg_entities, -1, dtype=np.int64)
    old_at[remap] = np.arange(len(remap))
    for j, row in enumerate(new_rows):
        known = [
            old_at[neighbor]
            for _, neighbor in ckg.neighbors(int(row))
            if old_at[neighbor] >= 0
        ]
        if known:
            drawn[j] = old_table[known].mean(axis=0)
    return drawn


def grow_state(
    state: TrainState,
    plan: GrowthPlan,
    param_names: list[str],
    *,
    init: str = "rng",
    rng: np.random.Generator | int | None = None,
    ckg=None,
) -> TrainState:
    """Return a copy of ``state`` living in ``plan``'s grown id layout.

    Parameters
    ----------
    state:
        The pre-delta checkpoint.
    plan:
        The :class:`~repro.stream.delta.GrowthPlan` from ``apply_delta``.
    param_names:
        Optimizer-buffer parameter order (:func:`parameter_order` on a
        model of the same architecture).
    init:
        Fresh-row initializer: ``"rng"`` (seeded ``N(0, 0.1)`` draws) or
        ``"neighbor_mean"`` (mean of already-known collaborative-KG
        neighbors, falling back to the draw for isolated rows).
    rng:
        Seed or generator for the fresh draws (:func:`repro.rng.ensure_rng`).
    ckg:
        The *grown* collaborative KG; required for ``neighbor_mean``.
    """
    if init not in GROW_INITS:
        raise ValueError(f"init must be one of {GROW_INITS}, got {init!r}")
    if sorted(param_names) != sorted(state.model_state):
        raise CheckpointError(
            "param_names do not match the checkpoint's parameter set: "
            f"{sorted(param_names)} vs {sorted(state.model_state)}"
        )
    entity_table = state.model_state.get(_ENTITY_TABLE)
    relation_table = state.model_state.get(_RELATION_TABLE)
    if entity_table is None or relation_table is None:
        raise CheckpointError(
            "train state has no propagation embedding tables; "
            "only KGAG checkpoints can be grown"
        )
    if entity_table.shape[0] != plan.old_ckg_entities:
        raise CheckpointError(
            f"entity table has {entity_table.shape[0]} rows, plan expects "
            f"{plan.old_ckg_entities} pre-delta collaborative entities"
        )
    if relation_table.shape[0] != plan.old_relation_slots:
        raise CheckpointError(
            f"relation table has {relation_table.shape[0]} rows, plan expects "
            f"{plan.old_relation_slots} pre-delta relation slots"
        )

    if plan.is_identity:
        # Zero growth: pure deep copies, bit-exact by construction.
        grown = dataclasses.replace(
            state,
            model_state={k: v.copy() for k, v in state.model_state.items()},
            optimizer_state=copy.deepcopy(state.optimizer_state),
            rng_states=copy.deepcopy(state.rng_states),
            history=copy.deepcopy(state.history),
            best_state=(
                {k: v.copy() for k, v in state.best_state.items()}
                if state.best_state is not None
                else None
            ),
            source_path=None,
        )
        return grown

    rng = ensure_rng(rng)
    dim = entity_table.shape[1]
    entity_remap = plan.ckg_entity_remap()
    relation_remap = plan.relation_slot_remap()
    fresh_entities = _fresh_entity_rows(plan, dim, init, rng, entity_table, ckg)
    fresh_relations = rng.normal(
        0.0, EMBEDDING_INIT_STD, size=(len(plan.new_relation_rows()), dim)
    ).astype(relation_table.dtype)

    def grow_table(name: str, table: np.ndarray, fresh: bool) -> np.ndarray:
        if name == _ENTITY_TABLE:
            return _grown_rows(
                table,
                plan.new_ckg_entities,
                entity_remap,
                fresh_entities if fresh else None,
            )
        if name == _RELATION_TABLE:
            return _grown_rows(
                table,
                plan.new_relation_slots,
                relation_remap,
                fresh_relations if fresh else None,
            )
        return table.copy()

    model_state = {
        name: grow_table(name, value, fresh=True)
        for name, value in state.model_state.items()
    }
    # Best-on-validation snapshot grows with the *same* fresh rows, so
    # the two views of a new entity cannot diverge before it is trained.
    best_state = (
        {
            name: grow_table(name, value, fresh=True)
            for name, value in state.best_state.items()
        }
        if state.best_state is not None
        else None
    )
    optimizer_state = copy.deepcopy(state.optimizer_state)
    for buffers in optimizer_state.get("buffers", {}).values():
        if len(buffers) != len(param_names):
            raise CheckpointError(
                f"optimizer has {len(buffers)} buffers for "
                f"{len(param_names)} parameters"
            )
        for i, name in enumerate(param_names):
            # New rows keep zero moments — an optimizer that has never
            # stepped them, exactly like a fresh table's rows.
            buffers[i] = grow_table(name, buffers[i], fresh=False)

    return dataclasses.replace(
        state,
        model_state=model_state,
        optimizer_state=optimizer_state,
        rng_states=copy.deepcopy(state.rng_states),
        history=copy.deepcopy(state.history),
        best_state=best_state,
        source_path=None,
    )


def _config_from_state(state: TrainState) -> KGAGConfig:
    """Rebuild the model config recorded in a checkpoint."""
    recorded = dict(state.config or {})
    fields = {f.name for f in dataclasses.fields(KGAGConfig)}
    return KGAGConfig(**{k: v for k, v in recorded.items() if k in fields})


def warm_start(
    dataset,
    state: TrainState,
    plan: GrowthPlan,
    group_train: InteractionTable,
    *,
    group_validation: InteractionTable | None = None,
    init: str = "rng",
    rng: np.random.Generator | int | None = None,
    metrics=None,
) -> KGAGTrainer:
    """Build a trainer over the grown ``dataset`` resuming from ``state``.

    Constructs a fresh :class:`KGAG` for the grown vocabularies (which
    re-samples neighbor tables over the *grown* KG — new edges must be
    re-propagated, per the KGCN motivation, and the sampling is
    deterministic from the config seed), grows ``state`` to match, and
    restores it.  With an identity plan and the same dataset this
    round-trips bit-exactly.
    """
    config = _config_from_state(state)
    model = KGAG(
        dataset.kg,
        dataset.num_users,
        dataset.num_items,
        dataset.user_item.pairs,
        dataset.groups,
        config,
    )
    grown = grow_state(
        state,
        plan,
        parameter_order(model),
        init=init,
        rng=rng,
        ckg=model.ckg,
    )
    trainer = KGAGTrainer(
        model,
        group_train,
        dataset.user_item,
        group_validation=group_validation,
        metrics=metrics,
    )
    grown.restore(trainer)
    return trainer


def finetune(trainer: KGAGTrainer, epochs: int) -> list[float]:
    """Run ``epochs`` plain training epochs; returns the epoch losses.

    ``fit()`` restores the best-on-validation snapshot when it finishes —
    correct for from-scratch training, wrong for a warm start whose best
    snapshot predates the delta.  Fine-tuning therefore drives
    ``train_epoch`` directly; zero epochs is an exact no-op (the
    warm-start equivalence guarantee).
    """
    if epochs < 0:
        raise ValueError("epochs must be non-negative")
    return [float(trainer.train_epoch()) for _ in range(int(epochs))]
