"""Mini-batch loading.

The paper performs mini-batch training "where each mini-batch contains
both user-item and group-item interactions" (Sec. III-E).
:class:`MixedBatchLoader` yields exactly that: group triplets for the
margin loss and labelled user pairs for the log loss, proportionally
interleaved so both heads see data every step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .interactions import InteractionTable
from .negative import NegativeSampler
from ..rng import ensure_rng, generator_state, set_generator_state

__all__ = ["MixedBatch", "MixedBatchLoader", "iterate_minibatches"]


@dataclass
class MixedBatch:
    """One training step's data.

    Attributes
    ----------
    group_triplets:
        ``(b_g, 3)`` rows of ``(group, positive_item, negative_item)``.
    user_pairs:
        ``(b_u, 3)`` rows of ``(user, item, label)``.
    """

    group_triplets: np.ndarray
    user_pairs: np.ndarray

    @property
    def size(self) -> int:
        return len(self.group_triplets) + len(self.user_pairs)


def iterate_minibatches(
    array: np.ndarray, batch_size: int, rng: np.random.Generator
) -> Iterator[np.ndarray]:
    """Shuffle rows and yield consecutive chunks."""
    order = rng.permutation(len(array))
    for start in range(0, len(array), batch_size):
        yield array[order[start : start + batch_size]]


class MixedBatchLoader:
    """Iterates epochs of mixed group+user mini-batches.

    Parameters
    ----------
    group_train:
        Group-item training positives.
    user_train:
        User-item training positives.
    batch_size:
        Number of *group* triplets per batch; user pairs are attached
        proportionally so one epoch covers both tables once.
    negatives_per_positive:
        Negatives per user positive for the log-loss head.
    rng:
        Seeded generator (shuffling + negative sampling).
    group_rows, user_rows:
        Optional row indices into the tables' ``pairs`` arrays.  When
        given, the loader iterates only those rows (a data-parallel
        worker's shard) while the negative samplers still see the *full*
        tables, so a shard never draws another shard's positive as a
        negative.
    """

    def __init__(
        self,
        group_train: InteractionTable,
        user_train: InteractionTable,
        batch_size: int = 128,
        negatives_per_positive: int = 1,
        rng: np.random.Generator | None = None,
        group_rows: np.ndarray | None = None,
        user_rows: np.ndarray | None = None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.group_train = group_train
        self.user_train = user_train
        self._group_rows = (
            None if group_rows is None else np.asarray(group_rows, dtype=np.int64)
        )
        self._user_rows = (
            None if user_rows is None else np.asarray(user_rows, dtype=np.int64)
        )
        num_group = (
            group_train.num_interactions
            if self._group_rows is None
            else self._group_rows.size
        )
        num_user = (
            user_train.num_interactions
            if self._user_rows is None
            else self._user_rows.size
        )
        if num_group == 0:
            raise ValueError("group training table is empty")
        self._num_group_rows = num_group
        self.batch_size = batch_size
        self.rng = ensure_rng(rng)
        self.group_negatives = NegativeSampler(group_train, rng=self.rng)
        self.user_negatives = NegativeSampler(user_train, rng=self.rng)
        self.negatives_per_positive = negatives_per_positive
        # User rows per group row so one epoch covers both tables.
        self._user_ratio = num_user / num_group if num_user else 0.0

    def num_batches(self) -> int:
        """Batches per epoch."""
        return int(np.ceil(self._num_group_rows / self.batch_size))

    def rng_state(self) -> dict:
        """Snapshot of every generator the loader draws from.

        The loader and its two negative samplers usually share one
        generator object, but each is captured under its own key so a
        loader wired with independent generators round-trips too.
        """
        return {
            "loader": generator_state(self.rng),
            "group_negatives": self.group_negatives.rng_state(),
            "user_negatives": self.user_negatives.rng_state(),
        }

    def set_rng_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`rng_state` (bit-exact resume)."""
        set_generator_state(self.rng, state["loader"])
        self.group_negatives.set_rng_state(state["group_negatives"])
        self.user_negatives.set_rng_state(state["user_negatives"])

    def epoch(self) -> Iterator[MixedBatch]:
        """Yield one epoch of mixed batches."""
        group_pairs = self.group_train.pairs
        if self._group_rows is not None:
            group_pairs = group_pairs[self._group_rows]
        user_pairs = self.user_train.pairs
        if self._user_rows is not None:
            user_pairs = user_pairs[self._user_rows]
        user_batch_size = max(1, int(round(self.batch_size * self._user_ratio)))

        user_iter = (
            iterate_minibatches(user_pairs, user_batch_size, self.rng)
            if len(user_pairs)
            else iter(())
        )
        for group_chunk in iterate_minibatches(group_pairs, self.batch_size, self.rng):
            triplets = self.group_negatives.sample_triplets(group_chunk)
            user_chunk = next(user_iter, None)
            if user_chunk is None or len(user_chunk) == 0:
                labelled = np.zeros((0, 3), dtype=np.int64)
            else:
                labelled = self.user_negatives.labelled_pairs(
                    user_chunk, self.negatives_per_positive
                )
            yield MixedBatch(group_triplets=triplets, user_pairs=labelled)
