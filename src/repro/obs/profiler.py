"""Per-op autograd profiler: time and bytes attributed to each tape op.

:class:`TapeProfiler` observes the two autograd choke points —
``Tensor._make`` (forward node creation) and ``Tensor._accumulate``
(backward gradient write) — through the shared hook registry of
:mod:`repro.nn.tensor`, the same mechanism
:class:`~repro.analysis.sanitizer.TapeSanitizer` uses, so both can run
concurrently and the default (unprofiled) path keeps the pristine code
objects with zero added frames.

Attribution model
-----------------
Autograd ops execute sequentially on one thread, and each op's numpy
work happens immediately *before* its hook fires (``_make`` is called
with the already-computed output array; ``_accumulate`` with the
already-computed gradient).  The profiler therefore timestamps every
hook event and charges the delta since the previous event to the op
that fired it:

* forward: the delta covers the op's numpy compute + tape bookkeeping,
  charged to the producing method (``Tensor.__matmul__``,
  ``Embedding.forward``'s ``Tensor.__getitem__``, ...);
* backward: the delta covers the running backward closure, charged to
  the op whose closure is executing (``Tensor.__matmul__ [bwd]``); the
  topological sort and gradient seeding inside ``Tensor.backward``
  surface as a ``Tensor.backward [bwd]`` row.

Because deltas telescope, their sum equals the time from ``__enter__``
to the **last** tape event — so the op table accounts for (almost) the
whole profiled wall time; :attr:`TapeProfiler.coverage` reports the
exact fraction and ``python -m repro.obs.report`` checks it stays
within 10%.  Python-level time between ops (indexing setup, batch
slicing) is charged to the *next* op — fine-grained enough to rank the
paper's hot paths (the Eqs. 2-8 propagation matmuls and the Eqs. 9-14
attention softmaxes) by true cost.

Bytes are the sizes of the arrays flowing through the tape: the op's
output array on the forward pass, the accumulated gradient on the
backward pass.

Single-threaded by design: training steps run on one thread.  Profiling
a concurrent workload would interleave deltas meaninglessly — use
:class:`~repro.obs.trace.Tracer` spans there instead.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable

from ..nn.tensor import install_tape_hooks, uninstall_tape_hooks

__all__ = ["OpProfile", "TapeProfiler"]


@dataclass
class OpProfile:
    """Accumulated cost of one op (both passes)."""

    name: str
    forward_calls: int = 0
    forward_seconds: float = 0.0
    forward_bytes: int = 0
    backward_calls: int = 0
    backward_seconds: float = 0.0
    backward_bytes: int = 0

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds

    @property
    def total_bytes(self) -> int:
        return self.forward_bytes + self.backward_bytes

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "forward_calls": self.forward_calls,
            "forward_seconds": self.forward_seconds,
            "forward_bytes": self.forward_bytes,
            "backward_calls": self.backward_calls,
            "backward_seconds": self.backward_seconds,
            "backward_bytes": self.backward_bytes,
        }


_BACKWARD_SUFFIX = ".<locals>.backward"


class TapeProfiler:
    """Context manager that attributes tape time/bytes per op.

    Parameters
    ----------
    clock:
        Monotonic time source (injectable for deterministic tests).

    Usage::

        with TapeProfiler() as profile:
            loss = model_loss(batch)
            loss.backward()
        print(profile.table(top=10))
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.ops: dict[str, OpProfile] = {}
        self.wall_seconds = 0.0
        self._start = 0.0
        self._last = 0.0

    # -- context protocol --------------------------------------------------
    def __enter__(self) -> "TapeProfiler":
        self.ops = {}
        self.wall_seconds = 0.0
        install_tape_hooks(self)
        self._start = self._last = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_seconds = self._clock() - self._start
        uninstall_tape_hooks(self)

    # -- tape hook protocol ------------------------------------------------
    def on_make(self, data, parents, backward) -> None:
        now = self._clock()
        # Frames: 0 = on_make, 1 = _hooked_make, 2 = the producing op.
        code = sys._getframe(2).f_code
        name = getattr(code, "co_qualname", code.co_name)
        profile = self.ops.get(name)
        if profile is None:
            profile = self.ops[name] = OpProfile(name)
        profile.forward_calls += 1
        profile.forward_seconds += now - self._last
        profile.forward_bytes += getattr(data, "nbytes", 0)
        self._last = now

    def on_accumulate(self, tensor, grad) -> None:
        now = self._clock()
        # Frames: 0 = on_accumulate, 1 = _hooked_accumulate, 2 = the
        # backward closure (or Tensor.backward seeding the output grad).
        # Gradient-routing helpers (_accumulate_exclusive / _give) may
        # sit in between; skip them so time lands on the real op.
        frame = sys._getframe(2)
        while (
            frame.f_code.co_name in ("_accumulate_exclusive", "_give")
            and frame.f_back is not None
        ):
            frame = frame.f_back
        code = frame.f_code
        name = getattr(code, "co_qualname", code.co_name)
        if name.endswith(_BACKWARD_SUFFIX):
            name = name[: -len(_BACKWARD_SUFFIX)]
        profile = self.ops.get(name)
        if profile is None:
            profile = self.ops[name] = OpProfile(name)
        profile.backward_calls += 1
        profile.backward_seconds += now - self._last
        profile.backward_bytes += getattr(grad, "nbytes", 0)
        self._last = now

    # -- aggregates --------------------------------------------------------
    @property
    def attributed_seconds(self) -> float:
        """Sum of all per-op deltas = start .. last tape event."""
        return sum(op.total_seconds for op in self.ops.values())

    @property
    def coverage(self) -> float:
        """attributed / wall — how much of the profiled region the op
        table explains (1.0 minus the tail after the last tape event)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.attributed_seconds / self.wall_seconds

    def top(self, n: int | None = None) -> list[OpProfile]:
        """Ops sorted by total attributed time, most expensive first."""
        ranked = sorted(
            self.ops.values(), key=lambda op: op.total_seconds, reverse=True
        )
        return ranked if n is None else ranked[:n]

    def table(self, top: int | None = 10) -> str:
        """Formatted top-N op table (time in ms, bytes in MiB)."""
        ranked = self.top(top)
        if not ranked:
            return "tape profiler: no ops recorded"
        total = self.attributed_seconds or 1.0
        width = max(len(op.name) for op in ranked)
        header = (
            f"{'op':<{width}}  {'calls':>7}  {'fwd ms':>9}  {'bwd ms':>9}  "
            f"{'total ms':>9}  {'%':>5}  {'MiB':>8}"
        )
        lines = [header, "-" * len(header)]
        for op in ranked:
            lines.append(
                f"{op.name:<{width}}  {op.forward_calls + op.backward_calls:>7}  "
                f"{op.forward_seconds * 1e3:>9.3f}  {op.backward_seconds * 1e3:>9.3f}  "
                f"{op.total_seconds * 1e3:>9.3f}  {op.total_seconds / total * 100:>4.1f}%  "
                f"{op.total_bytes / 2**20:>8.2f}"
            )
        lines.append(
            f"attributed {self.attributed_seconds * 1e3:.3f} ms of "
            f"{self.wall_seconds * 1e3:.3f} ms wall "
            f"({self.coverage * 100:.1f}% coverage)"
        )
        return "\n".join(lines)
