"""Benchmark: the extra design-choice ablations of DESIGN.md §4.

Beyond the paper's Table III, this quantifies four implementation
decisions the paper leaves implicit:

1. sigmoid-squashed margin loss (Eq. 16) vs margin on raw scores;
2. relation-stratified neighbor sampling vs plain uniform sampling
   (our approximation of the paper's full-neighborhood attention);
3. the interaction-object relation attention π of Eq. 2 vs uniform 1/K
   neighbor weights;
4. mixed user+group training (Eq. 20) vs group-only training (β = 1).
"""

import numpy as np
import pytest

from repro.core import KGAG, KGAGTrainer
from repro.data import split_interactions
from repro.eval import evaluate_group_recommender
from repro.experiments import build_dataset
from repro.kg import NeighborSampler
from repro.nn import no_grad

from conftest import run_once

DATASET = "movielens-rand"


def _train_eval(dataset, split, config):
    model = KGAG(
        dataset.kg,
        dataset.num_users,
        dataset.num_items,
        dataset.user_item.pairs,
        dataset.groups,
        config,
    )
    KGAGTrainer(model, split.train, dataset.user_item, split.validation).fit()
    with no_grad():
        return evaluate_group_recommender(
            lambda g, v: model.group_item_scores(g, v).numpy(),
            split.test,
            train_interactions=split.train,
        )


def _run_variants(profile, variants):
    results = {name: [] for name in variants}
    for seed in profile.seeds:
        dataset = build_dataset(DATASET, profile, seed)
        split = split_interactions(dataset.group_item, rng=np.random.default_rng(seed))
        for name, config in variants.items():
            metrics = _train_eval(dataset, split, config.with_overrides(seed=seed))
            results[name].append(metrics["rec@5"])
    return {name: float(np.mean(values)) for name, values in results.items()}


def test_margin_squashing_ablation(benchmark, profile):
    variants = {
        "sigmoid-margin (paper)": profile.model,
        "raw margin": profile.model.with_overrides(loss="margin_raw"),
    }
    means = run_once(benchmark, _run_variants, profile, variants)
    benchmark.extra_info.update(means)
    print()
    for name, value in means.items():
        print(f"  {name}: rec@5 {value:.4f}")
    assert all(np.isfinite(v) for v in means.values())


def test_uniform_neighbor_weight_ablation(benchmark, profile):
    variants = {
        "relation attention (Eq. 2)": profile.model,
        "uniform 1/K weights": profile.model.with_overrides(
            uniform_neighbor_weights=True
        ),
    }
    means = run_once(benchmark, _run_variants, profile, variants)
    benchmark.extra_info.update(means)
    print()
    for name, value in means.items():
        print(f"  {name}: rec@5 {value:.4f}")
    assert all(np.isfinite(v) for v in means.values())


def test_group_only_training_ablation(benchmark, profile):
    variants = {
        "mixed loss (beta from profile)": profile.model,
        "group-only (beta = 1)": profile.model.with_overrides(beta=1.0),
    }
    means = run_once(benchmark, _run_variants, profile, variants)
    benchmark.extra_info.update(means)
    print()
    for name, value in means.items():
        print(f"  {name}: rec@5 {value:.4f}")
    # The paper's sparsity argument: dropping the user-item signal should
    # not help.  Only asserted at the calibrated profiles — the quick
    # profile's single tiny seed cannot resolve the ordering.
    assert all(np.isfinite(v) for v in means.values())
    if profile.name in ("default", "full"):
        assert (
            means["mixed loss (beta from profile)"]
            >= means["group-only (beta = 1)"] - 0.05
        )


def test_pi_pooling_ablation(benchmark, profile):
    """Paper's concat PI (Eq. 10) vs the size-agnostic mean-pooled PI."""
    variants = {
        "concat peers (Eq. 10)": profile.model,
        "mean-pooled peers": profile.model.with_overrides(pi_pooling="mean"),
    }
    means = run_once(benchmark, _run_variants, profile, variants)
    benchmark.extra_info.update(means)
    print()
    for name, value in means.items():
        print(f"  {name}: rec@5 {value:.4f}")
    assert all(np.isfinite(v) for v in means.values())


def test_neighbor_sampling_k_sweep(benchmark, profile):
    """Accuracy and cost of the fixed-K receptive field."""
    ks = (2, 4, 8)

    def sweep():
        out = {}
        for k in ks:
            config = profile.model.with_overrides(num_neighbors=k)
            dataset = build_dataset(DATASET, profile, profile.seeds[0])
            split = split_interactions(
                dataset.group_item, rng=np.random.default_rng(profile.seeds[0])
            )
            metrics = _train_eval(dataset, split, config)
            out[k] = metrics["rec@5"]
        return out

    means = run_once(benchmark, sweep)
    benchmark.extra_info.update({f"K={k}": v for k, v in means.items()})
    print()
    for k, value in means.items():
        print(f"  K={k}: rec@5 {value:.4f}")
    assert set(means) == set(ks)


def test_stratified_sampling_covers_rare_relations(benchmark, profile):
    """Structural check + timing of the stratified sampler on a hub graph."""
    dataset = build_dataset(DATASET, profile, profile.seeds[0])
    from repro.kg import build_collaborative_graph

    ckg = build_collaborative_graph(
        dataset.kg, dataset.num_users, dataset.user_item.pairs
    )

    def build():
        return NeighborSampler(
            ckg, 4, rng=np.random.default_rng(0), stratify_by_relation=True
        )

    sampler = benchmark(build)
    # On a hub item (many Interact edges + few attribute edges) the
    # stratified sampler must still surface attribute relations.
    item_counts = dataset.user_item.to_csr().sum(axis=0).A.ravel()
    hub_item = int(np.argmax(item_counts))
    _, relations = sampler.sampled_neighbors(np.array([hub_item]))
    assert len(set(relations.ravel().tolist())) >= 2, (
        "stratified sampling should cover more than one relation type on a hub"
    )
