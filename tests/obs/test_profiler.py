"""TapeProfiler: per-op attribution on a real KGAG forward/backward."""

import numpy as np
import pytest

from repro.analysis.report import build_small_kgag_loss
from repro.analysis.sanitizer import TapeSanitizer
from repro.nn import Tensor, tape_hooks_active
from repro.nn.tensor import _PRISTINE_ACCUMULATE, _PRISTINE_MAKE
from repro.obs import TapeProfiler


class TestAttribution:
    def test_kgag_step_attributes_forward_and_backward(self):
        with TapeProfiler() as profiler:
            model, loss = build_small_kgag_loss(seed=0)
            loss.backward()
        names = set(profiler.ops)
        # The embedding gathers and the attention/propagation arithmetic
        # must show up as distinct attributed ops.
        assert "Tensor.__getitem__" in names
        assert "Tensor.__matmul__" in names
        gather = profiler.ops["Tensor.__getitem__"]
        assert gather.forward_calls > 0 and gather.backward_calls > 0
        assert gather.forward_bytes > 0 and gather.backward_bytes > 0
        assert gather.total_seconds > 0.0

    def test_backward_closure_names_collapse_onto_the_op(self):
        with TapeProfiler() as profiler:
            x = Tensor(np.ones(4), requires_grad=True)
            (x * Tensor(np.ones(4))).sum().backward()
        # No raw closure qualnames: "Tensor.__mul__.<locals>.backward"
        # must be folded into "Tensor.__mul__".
        assert not any(".<locals>." in name for name in profiler.ops)
        assert profiler.ops["Tensor.__mul__"].backward_calls > 0

    def test_coverage_is_high_on_a_training_step(self):
        with TapeProfiler() as profiler:
            model, loss = build_small_kgag_loss(seed=1)
            loss.backward()
        # The acceptance bar of python -m repro.obs.report: deltas
        # telescope, so the table explains >= 90% of the wall time.
        assert profiler.coverage >= 0.90
        assert profiler.attributed_seconds <= profiler.wall_seconds

    def test_deterministic_with_injected_clock(self):
        ticks = iter(float(t) for t in range(1000))
        with TapeProfiler(clock=lambda: next(ticks)) as profiler:
            x = Tensor(np.ones(3), requires_grad=True)
            (x + Tensor(np.ones(3))).sum().backward()
        # Every hook event advances the fake clock by exactly 1s.
        total_events = sum(
            op.forward_calls + op.backward_calls for op in profiler.ops.values()
        )
        assert profiler.attributed_seconds == float(total_events)

    def test_table_renders_ranked_rows(self):
        with TapeProfiler() as profiler:
            (Tensor(np.ones(8), requires_grad=True) * 2.0).sum().backward()
        table = profiler.table(top=5)
        assert "op" in table and "coverage" in table
        assert "Tensor.sum" in table


class TestHookLifecycle:
    def test_default_path_has_no_hooks_installed(self):
        assert not tape_hooks_active()
        assert Tensor.__dict__["_make"] is _PRISTINE_MAKE
        assert Tensor.__dict__["_accumulate"] is _PRISTINE_ACCUMULATE

    def test_pristine_tape_restored_after_exit(self):
        with TapeProfiler():
            assert tape_hooks_active()
        assert not tape_hooks_active()
        assert Tensor.__dict__["_make"] is _PRISTINE_MAKE
        assert Tensor.__dict__["_accumulate"] is _PRISTINE_ACCUMULATE

    def test_reentering_same_profiler_resets_state(self):
        profiler = TapeProfiler()
        with profiler:
            Tensor(np.ones(2)) + 1.0
        first = dict(profiler.ops)
        with profiler:
            pass
        assert first and profiler.ops == {}

    def test_profiler_composes_with_sanitizer(self):
        # Both observers ride the same tape-hook registry concurrently:
        # the sanitizer still validates, the profiler still attributes.
        with TapeSanitizer(raise_on_anomaly=False) as tape:
            with TapeProfiler() as profiler:
                x = Tensor(np.ones(4), requires_grad=True)
                (x * Tensor(np.ones(4))).sum().backward()
        assert profiler.ops["Tensor.__mul__"].forward_calls > 0
        assert not [a for a in tape.anomalies if a.severity == "error"]
        assert not tape_hooks_active()
        assert Tensor.__dict__["_make"] is _PRISTINE_MAKE

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_sanitizer_still_catches_anomalies_under_profiler(self):
        with TapeProfiler():
            with TapeSanitizer(raise_on_anomaly=False) as tape:
                Tensor(np.array([0.0, -1.0])).log()
        assert any(a.kind == "non-finite-forward" for a in tape.anomalies)

    def test_double_install_raises(self):
        profiler = TapeProfiler()
        with profiler:
            with pytest.raises(ValueError, match="already installed"):
                profiler.__enter__()
            # Registry state is unharmed by the rejected re-entry.
            assert tape_hooks_active()
        assert not tape_hooks_active()
