"""Property-based tests (hypothesis) for knowledge-graph invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.kg import KnowledgeGraph, NeighborSampler, random_kg


@st.composite
def graphs(draw):
    num_entities = draw(st.integers(2, 20))
    num_relations = draw(st.integers(1, 4))
    num_triples = draw(st.integers(0, 40))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    heads = rng.integers(0, num_entities, num_triples)
    relations = rng.integers(0, num_relations, num_triples)
    tails = rng.integers(0, num_entities, num_triples)
    triples = list(zip(heads.tolist(), relations.tolist(), tails.tolist()))
    return KnowledgeGraph(num_entities, num_relations, triples)


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_triples_are_unique(kg):
    if kg.num_triples:
        assert len(np.unique(kg.triples, axis=0)) == kg.num_triples


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_bidirectional_adjacency_is_symmetric(kg):
    """If t is a neighbor of h, then h is a neighbor of t."""
    for head, _, tail in kg.triples:
        assert any(n == head for _, n in kg.neighbors(int(tail)))
        assert any(n == tail for _, n in kg.neighbors(int(head)))


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_degree_sum_counts_each_edge_twice(kg):
    """Bidirectional adjacency: every non-self-loop triple adds 2 degree."""
    self_loops = int((kg.triples[:, 0] == kg.triples[:, 2]).sum()) if kg.num_triples else 0
    expected = 2 * (kg.num_triples - self_loops) + self_loops
    assert kg.degrees().sum() == expected


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_merge_with_self_is_identity(kg):
    merged = kg.merge(kg)
    np.testing.assert_array_equal(merged.triples, kg.triples)


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_bfs_distances_satisfy_triangle_steps(kg):
    """BFS distance increases by at most one per hop from any neighbor."""
    if kg.num_entities == 0:
        return
    distances = kg.bfs_distances(0)
    for entity, distance in distances.items():
        for _, neighbor in kg.neighbors(entity):
            if neighbor in distances:
                assert abs(distances[neighbor] - distance) <= 1


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(1, 5), st.integers(0, 1000))
def test_sampler_outputs_in_range(kg, k, seed):
    sampler = NeighborSampler(kg, k, rng=np.random.default_rng(seed))
    entities = np.arange(kg.num_entities)
    neighbor_entities, neighbor_relations = sampler.sampled_neighbors(entities)
    assert neighbor_entities.shape == (kg.num_entities, k)
    assert (neighbor_entities >= 0).all()
    assert (neighbor_entities < kg.num_entities).all()
    assert (neighbor_relations >= 0).all()
    assert (neighbor_relations < sampler.num_relation_slots).all()


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(1, 3), st.integers(0, 2), st.integers(0, 1000))
def test_receptive_field_shapes(kg, k, depth, seed):
    sampler = NeighborSampler(kg, k, rng=np.random.default_rng(seed))
    batch = min(3, kg.num_entities)
    seeds = np.arange(batch)
    field = sampler.receptive_field(seeds, depth)
    assert field.depth == depth
    for hop in range(depth + 1):
        assert field.entities[hop].shape == ((batch,) if hop == 0 else (batch, k**hop))


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(1, 4))
def test_sampled_neighbors_are_real_neighbors_or_self_loops(kg, k):
    sampler = NeighborSampler(kg, k, rng=np.random.default_rng(0))
    for entity in range(kg.num_entities):
        edges = set(kg.neighbors(entity))
        sampled_e, sampled_r = sampler.sampled_neighbors(np.array([entity]))
        for relation, neighbor in zip(sampled_r[0], sampled_e[0]):
            if edges:
                assert (int(relation), int(neighbor)) in edges
            else:
                assert neighbor == entity
                assert relation == sampler.self_relation


def test_random_kg_respects_bounds():
    kg = random_kg(10, 2, 50, rng=np.random.default_rng(0))
    assert kg.triples[:, 0].max() < 10
    assert kg.triples[:, 1].max() < 2
