"""Tests for the repro.analysis subsystem."""
