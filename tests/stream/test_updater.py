"""OnlineUpdater ingestion, DeltaFeedWatcher tailing, and the CLI path."""

import time

import pytest

from repro.cli import main
from repro.data.io import save_dataset
from repro.obs.metrics import MetricsRegistry
from repro.serve import EmbeddingIndex, RecommendationService
from repro.stream import DeltaBatch, OnlineUpdater, DeltaFeedWatcher, write_delta_jsonl


def _cold_item_delta(dataset):
    members = [int(u) for u in dataset.groups.members[0]]
    records = [
        {"op": "add_item", "name": "cold-item"},
        {
            "op": "add_edge",
            "head": f"item:{dataset.num_items}",
            "relation": 0,
            "tail": "attr:0",
        },
        {"op": "add_group", "members": members},
    ]
    records += [
        {"op": "add_interaction", "user": int(u), "item": dataset.num_items}
        for u in members
    ]
    return DeltaBatch.from_records(records)


class TestOnlineUpdater:
    def test_offline_ingest_grows_the_world(self, dataset, split, state):
        registry = MetricsRegistry()
        updater = OnlineUpdater(
            None,
            dataset,
            state,
            split.train,
            group_validation=split.validation,
            finetune_epochs=1,
            seed=3,
            metrics=registry,
        )
        assert updater.deltas_applied == 0
        assert updater.last_index is None

        report = updater.ingest(_cold_item_delta(dataset))
        grown_dataset, grown_state, group_train, _ = updater.snapshot()
        assert updater.deltas_applied == 1
        assert grown_dataset.num_items == dataset.num_items + 1
        assert grown_dataset.groups.num_groups == dataset.groups.num_groups + 1
        assert grown_state.epoch == state.epoch + 1
        assert group_train.num_rows == grown_dataset.groups.num_groups
        assert report["swap"] is None
        assert len(report["losses"]) == 1
        assert report["index_version"] == updater.last_index.version
        assert registry.get("stream/deltas_total").value == 1
        assert registry.get("stream/new_items_total").value == 1
        assert registry.get("stream/new_groups_total").value == 1

    def test_zero_epoch_budget_still_builds_an_index(self, dataset, split, state):
        updater = OnlineUpdater(
            None, dataset, state, split.train, finetune_epochs=0, seed=3
        )
        report = updater.ingest(_cold_item_delta(dataset))
        assert report["losses"] == []
        assert updater.last_index is not None
        # The grown index serves the cold item and the new group.
        index = updater.last_index
        assert index.num_items == dataset.num_items + 1
        assert index.num_groups == dataset.groups.num_groups + 1

    def test_live_ingest_hot_swaps_the_service(
        self, dataset, split, state, trained_index
    ):
        service = RecommendationService(trained_index, deadline_ms=None)
        try:
            updater = OnlineUpdater(
                service,
                dataset,
                state,
                split.train,
                group_validation=split.validation,
                finetune_epochs=1,
                seed=3,
            )
            old_version = service.index.version
            report = updater.ingest(_cold_item_delta(dataset))
            assert service.index.version == report["index_version"]
            assert report["swap"]["old_version"] == old_version
            new_group = dataset.groups.num_groups
            resp = service.recommend(new_group, k=3)
            assert resp["index_version"] == report["index_version"]
            # Stream metrics land in the service registry -> /metrics.
            text = service.metrics.render_text()
            assert "stream_deltas_total 1" in text
        finally:
            service.close()

    def test_bad_arguments_rejected(self, dataset, split, state):
        with pytest.raises(ValueError, match="finetune_epochs"):
            OnlineUpdater(None, dataset, state, split.train, finetune_epochs=-1)
        with pytest.raises(ValueError, match="init"):
            OnlineUpdater(None, dataset, state, split.train, init="zeros")


class TestDeltaFeedWatcher:
    def test_files_claimed_exactly_once(self, dataset, split, state, tmp_path):
        updater = OnlineUpdater(
            None, dataset, state, split.train, finetune_epochs=0, seed=3
        )
        watcher = DeltaFeedWatcher(updater, tmp_path)
        write_delta_jsonl(_cold_item_delta(dataset), tmp_path / "0001.jsonl")
        assert watcher.poll_once() == 1
        assert watcher.poll_once() == 0
        assert updater.deltas_applied == 1
        (report,) = watcher.reports()
        assert report["path"].endswith("0001.jsonl")
        assert "error" not in report

    def test_malformed_file_recorded_not_fatal(
        self, dataset, split, state, tmp_path
    ):
        updater = OnlineUpdater(
            None, dataset, state, split.train, finetune_epochs=0, seed=3
        )
        watcher = DeltaFeedWatcher(updater, tmp_path)
        (tmp_path / "0001.jsonl").write_text("{broken\n")
        write_delta_jsonl(_cold_item_delta(dataset), tmp_path / "0002.jsonl")
        assert watcher.poll_once() == 2
        bad, good = watcher.reports()
        assert "0001.jsonl:1" in bad["error"]
        assert "error" not in good
        assert updater.deltas_applied == 1

    def test_background_thread_ingests_and_joins(
        self, dataset, split, state, tmp_path
    ):
        updater = OnlineUpdater(
            None, dataset, state, split.train, finetune_epochs=0, seed=3
        )
        with DeltaFeedWatcher(updater, tmp_path, poll_interval=0.05) as watcher:
            write_delta_jsonl(_cold_item_delta(dataset), tmp_path / "0001.jsonl")
            deadline = time.monotonic() + 30.0
            while updater.deltas_applied < 1 and time.monotonic() < deadline:
                time.sleep(0.02)
        assert updater.deltas_applied == 1
        assert watcher._thread is None  # joined on close
        assert watcher.reports()[0]["path"].endswith("0001.jsonl")

    def test_bad_poll_interval(self, dataset, split, state, tmp_path):
        updater = OnlineUpdater(
            None, dataset, state, split.train, finetune_epochs=0, seed=3
        )
        with pytest.raises(ValueError, match="poll_interval"):
            DeltaFeedWatcher(updater, tmp_path, poll_interval=0.0)


class TestCLIIngestDelta:
    def test_end_to_end_offline_ingest(self, dataset, state, tmp_path):
        data_dir = save_dataset(dataset, tmp_path / "data")
        state_path = state.save(tmp_path / "state.npz")
        write_delta_jsonl(_cold_item_delta(dataset), tmp_path / "0001.jsonl")
        code = main(
            [
                "ingest-delta",
                "--data",
                str(data_dir),
                "--state",
                str(state_path),
                "--delta",
                str(tmp_path / "0001.jsonl"),
                "--seed",
                "3",
                "--finetune-epochs",
                "1",
                "--out-data",
                str(tmp_path / "grown"),
                "--out-state",
                str(tmp_path / "grown-state.npz"),
                "--index-out",
                str(tmp_path / "grown-index.npz"),
            ]
        )
        assert code == 0
        from repro.data.io import load_dataset

        grown = load_dataset(tmp_path / "grown")
        assert grown.num_items == dataset.num_items + 1
        index = EmbeddingIndex.load(tmp_path / "grown-index.npz")
        assert index.num_items == dataset.num_items + 1
        from repro.core.checkpoint import TrainState

        grown_state = TrainState.load(tmp_path / "grown-state.npz")
        assert grown_state.epoch == state.epoch + 1

    def test_empty_feed_directory_is_an_error(self, dataset, state, tmp_path):
        data_dir = save_dataset(dataset, tmp_path / "data")
        state_path = state.save(tmp_path / "state.npz")
        (tmp_path / "feed").mkdir()
        code = main(
            [
                "ingest-delta",
                "--data",
                str(data_dir),
                "--state",
                str(state_path),
                "--delta",
                str(tmp_path / "feed"),
            ]
        )
        assert code == 2
