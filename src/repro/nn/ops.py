"""Functional operations on :class:`~repro.nn.tensor.Tensor`.

These are the composite / multi-input operations that do not fit naturally
as ``Tensor`` methods: concatenation, stacking, stable softmax, pairwise
maximum, masked selection, and the embedding-style gather used throughout
the KGAG propagation code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor, _give, as_tensor, unbroadcast

__all__ = [
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "softmax",
    "log_softmax",
    "masked_softmax",
    "exp",
    "log",
    "sigmoid",
    "tanh",
    "relu",
    "leaky_relu",
    "dot",
    "batched_dot",
    "gather_rows",
    "outer_ones",
    "broadcast_to",
    "tile",
    "neighbor_scores",
    "neighbor_mix",
    "row_gather",
]


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                # Disjoint slices of the node's grad: exclusive per parent.
                tensor._accumulate_exclusive(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate_exclusive(piece)

    return Tensor._make(out_data, tensors, backward)


def where(condition, a, b) -> Tensor:
    """Elementwise select: ``condition ? a : b``.

    ``condition`` is treated as a constant (no gradient flows through it).
    """
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    a = as_tensor(a)
    b = as_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_exclusive(unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate_exclusive(
                unbroadcast(grad * (~cond if cond.dtype == bool else 1 - cond), b.shape)
            )

    return Tensor._make(out_data, (a, b), backward)


def maximum(a, b) -> Tensor:
    """Elementwise maximum of two tensors (ties send gradient to ``a``)."""
    a = as_tensor(a)
    b = as_tensor(b)
    out_data = np.maximum(a.data, b.data)
    a_wins = a.data >= b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_exclusive(unbroadcast(grad * a_wins, a.shape))
        if b.requires_grad:
            b._accumulate_exclusive(unbroadcast(grad * ~a_wins, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def minimum(a, b) -> Tensor:
    """Elementwise minimum of two tensors."""
    return -maximum(-as_tensor(a), -as_tensor(b))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        # d softmax: s * (grad - sum(grad * s))
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate_exclusive(out_data * (grad - inner))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        x._accumulate_exclusive(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax restricted to positions where ``mask`` is truthy.

    Masked-out positions receive probability exactly 0.  Rows whose mask is
    entirely false produce a zero row (not NaN), which downstream weighted
    sums treat as "no contribution".  Used for variable-size groups and
    variable-degree KG neighborhoods.
    """
    x = as_tensor(x)
    mask = np.asarray(mask, dtype=bool)
    neg_inf = np.finfo(x.data.dtype).min / 4
    masked = np.where(mask, x.data, neg_inf)
    shifted = masked - masked.max(axis=axis, keepdims=True)
    exps = np.exp(shifted) * mask
    denom = exps.sum(axis=axis, keepdims=True)
    safe_denom = np.where(denom == 0, 1.0, denom)
    out_data = exps / safe_denom

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate_exclusive(out_data * (grad - inner))

    return Tensor._make(out_data, (x,), backward)


def exp(x) -> Tensor:
    return as_tensor(x).exp()


def log(x) -> Tensor:
    return as_tensor(x).log()


def sigmoid(x) -> Tensor:
    return as_tensor(x).sigmoid()


def tanh(x) -> Tensor:
    return as_tensor(x).tanh()


def relu(x) -> Tensor:
    return as_tensor(x).relu()


def leaky_relu(x, negative_slope: float = 0.01) -> Tensor:
    """Leaky rectified linear unit."""
    x = as_tensor(x)
    out_data = np.where(x.data > 0, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_exclusive(grad * np.where(x.data > 0, 1.0, negative_slope))

    return Tensor._make(out_data, (x,), backward)


def dot(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise inner product of two ``(batch, d)`` tensors -> ``(batch,)``.

    This is the prediction-score primitive of the paper (Eqs. 14/15/19).
    """
    return (as_tensor(a) * as_tensor(b)).sum(axis=-1)


def batched_dot(a: Tensor, b: Tensor) -> Tensor:
    """Inner product along the last axis with broadcasting on the rest."""
    return (as_tensor(a) * as_tensor(b)).sum(axis=-1)


def gather_rows(table: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of a 2-D ``table`` by an integer index array.

    Result shape is ``indices.shape + (d,)``.  Backward scatter-adds, so
    repeated indices accumulate — the behaviour an ``Embedding`` needs.
    """
    indices = np.asarray(indices)
    if indices.dtype.kind not in "iu":
        raise TypeError("gather_rows requires integer indices")
    return table[indices]


def outer_ones(shape: tuple[int, ...]) -> Tensor:
    """Constant tensor of ones — occasionally useful as a mask seed."""
    return Tensor(np.ones(shape))


def broadcast_to(x: Tensor, shape: Sequence[int]) -> Tensor:
    """Broadcast ``x`` to ``shape`` without copying (differentiable).

    The forward pass is a zero-copy ``np.broadcast_to`` view; the
    backward pass sums the gradient back to ``x``'s shape.  This is the
    replacement for the ``x * ones(shape)`` tiling idiom, which paid a
    full multiply (and its backward) just to materialize the repeats.
    Since ``v * 1.0 == v`` bitwise under IEEE-754, swapping the idiom
    for this op leaves forward values bit-identical.
    """
    x = as_tensor(x)
    shape = tuple(int(s) for s in shape)
    out_data = np.broadcast_to(x.data, shape)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            _give(x, unbroadcast(grad, x.shape), grad)

    return Tensor._make(out_data, (x,), backward)


def neighbor_scores(relations: Tensor, query: Tensor) -> Tensor:
    """Fused attention logits ``einsum('bwkd,bd->bwk')`` (differentiable).

    One contraction replaces the ``(relations * query).sum(-1)``
    broadcast-multiply idiom, which materialized a full
    ``(batch, width, K, d)`` product (and two more on the backward pass)
    just to reduce it away again.  The contraction runs through BLAS
    dot kernels and the backward pass produces each parent's gradient
    directly at its own shape.
    """
    relations = as_tensor(relations)
    query = as_tensor(query)
    out_data = np.einsum("bwkd,bd->bwk", relations.data, query.data)

    def backward(grad: np.ndarray) -> None:
        if relations.requires_grad:
            relations._accumulate_exclusive(
                np.einsum("bwk,bd->bwkd", grad, query.data)
            )
        if query.requires_grad:
            query._accumulate_exclusive(
                np.einsum("bwk,bwkd->bd", grad, relations.data)
            )

    return Tensor._make(out_data, (relations, query), backward)


def neighbor_mix(weights: Tensor, neighbors: Tensor) -> Tensor:
    """Fused neighborhood aggregation ``einsum('bwk,bwkd->bwd')``.

    The differentiable counterpart of the ``(weights * neighbors).sum(2)``
    idiom (Eqs. 1/7): the K-neighborhood convex combination as a single
    batched contraction, with no ``(batch, width, K, d)`` temporaries on
    either pass.
    """
    weights = as_tensor(weights)
    neighbors = as_tensor(neighbors)
    out_data = np.einsum("bwk,bwkd->bwd", weights.data, neighbors.data)

    def backward(grad: np.ndarray) -> None:
        if weights.requires_grad:
            weights._accumulate_exclusive(
                np.einsum("bwd,bwkd->bwk", grad, neighbors.data)
            )
        if neighbors.requires_grad:
            neighbors._accumulate_exclusive(
                np.einsum("bwk,bwd->bwkd", weights.data, grad)
            )

    return Tensor._make(out_data, (weights, neighbors), backward)


def row_gather(table: Tensor, cols) -> Tensor:
    """Per-row gather ``out[i, j] = table[i, cols[i, j]]`` (differentiable).

    ``table`` is ``(B, R)`` and ``cols`` an integer ``(B, m)`` index
    array.  The backward pass scatters with a single dense bincount
    over the flattened ``B * R`` cells — sized for small R, like the
    per-query relation-logit table of the propagation block, where the
    gathered scalars replace per-edge relation-embedding rows.
    """
    table = as_tensor(table)
    cols = np.asarray(cols, dtype=np.int64)
    if table.ndim != 2 or cols.ndim != 2 or cols.shape[0] != table.shape[0]:
        raise ValueError(
            f"need (B, R) table and (B, m) cols, got {table.shape} and {cols.shape}"
        )
    batch, width = table.shape
    out_data = np.take_along_axis(table.data, cols, axis=1)

    def backward(grad: np.ndarray) -> None:
        if table.requires_grad:
            cells = cols + np.arange(batch, dtype=np.int64)[:, None] * width
            full = np.bincount(
                cells.ravel(), weights=grad.ravel(), minlength=batch * width
            ).reshape(batch, width)
            table._accumulate_exclusive(full)

    return Tensor._make(out_data, (table,), backward)


def tile(x: Tensor, reps: int | Sequence[int]) -> Tensor:
    """Repeat ``x`` like :func:`np.tile` (differentiable).

    For repeats along existing non-unit axes — where :func:`broadcast_to`
    cannot express the copy — the backward pass folds the gradient into
    interleaved ``(rep, size)`` blocks and sums over the rep axes.
    """
    x = as_tensor(x)
    reps = (int(reps),) if np.isscalar(reps) else tuple(int(r) for r in reps)
    if any(r < 0 for r in reps):
        raise ValueError("tile repetitions must be non-negative")
    out_data = np.tile(x.data, reps)
    # np.tile left-pads the shorter of (reps, x.shape) with ones.
    ndim = max(x.ndim, len(reps))
    base = (1,) * (ndim - x.ndim) + x.shape
    full_reps = (1,) * (ndim - len(reps)) + reps
    interleaved: list[int] = []
    for rep, size in zip(full_reps, base):
        interleaved.extend((rep, size))
    rep_axes = tuple(range(0, 2 * ndim, 2))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            folded = grad.reshape(interleaved).sum(axis=rep_axes)
            x._accumulate_exclusive(folded.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward)
