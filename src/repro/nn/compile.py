"""Trace-once/replay-many compiled executor for the autograd tape.

Every KGAG train step with the same batch shape builds the *same* graph:
the receptive field is a fixed-K dense gather, so the op sequence, all
array shapes, and even the backward firing order are invariants of the
``(group_triplets, user_pairs)`` shape signature.  The dynamic tape pays
Python dispatch, closure allocation, and fresh temporaries for that
identical structure on every step.

This module removes the interpreter:

* **Trace** — run one planned forward pass with a recording hooks object
  installed on the tape-hook registry (the same choke points the
  sanitizer and profiler use).  The recorder captures every
  ``Tensor._make`` in execution order; the live graph reached from the
  loss supplies parents, shapes, and the backward closures.
* **Specialize** — identify each op from its backward closure's
  ``__qualname__``, pull the static parameters out of the closure cells,
  and emit one flat list of forward kernels and one precomputed
  backward firing schedule (the exact Kahn order ``Tensor.backward``
  would produce).  Batch-dependent index arrays are bound by object
  identity against the *slots* the caller passes (see
  ``TrainStepPlan.slot_arrays``); everything else is baked in as a
  constant.  Kernels reuse preallocated output and gradient-edge
  buffers and keep the donation / segment-sum scatter semantics of the
  dynamic tape, so replayed values and gradients are bit-exact
  (``np.array_equal``) with what ``loss.backward()`` computes.
* **Replay** — :meth:`CompiledProgram.replay` takes a fresh list of slot
  arrays (a new batch of the same signature), runs the flat program,
  assigns ``parameter.grad`` for every trainable leaf, and returns the
  loss value.

Any op outside the supported set, a closure that captured
batch-dependent state the slots cannot rebind (``masked_softmax``'s
mask, ``where``'s condition), or a graph node created outside the traced
step raises :class:`TraceError` — callers fall back to the dynamic tape.
The layering rule holds: this module knows nothing about ``repro.core``;
the trainer supplies a forward thunk and the slot arrays.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import (
    Tensor,
    _index_add,
    install_tape_hooks,
    tape_hooks_active,
    unbroadcast,
    uninstall_tape_hooks,
)

__all__ = [
    "TraceError",
    "CompiledProgram",
    "trace_step",
    "SUPPORTED_OPS",
]


class TraceError(RuntimeError):
    """A step could not be captured (or replayed) as a compiled program."""


# ---------------------------------------------------------------------------
# gradient accumulation — exact replicas of Tensor._accumulate[_exclusive]
# ---------------------------------------------------------------------------
# ``grads`` is a flat list indexed by value id.  The semantics (private
# first copy, in-place second accumulation when shapes match and the
# buffer is writeable, donation of exclusively-owned arrays) mirror the
# dynamic tape line for line; replay only runs with no tape hooks
# installed, so the pristine-accumulate condition of the dynamic
# donation path is always satisfied here.


def _acc(grads: list, vid: int, g: np.ndarray, dtype) -> None:
    cur = grads[vid]
    if cur is None:
        grads[vid] = g.astype(dtype, copy=True)
    elif g.shape == cur.shape and cur.flags.writeable:
        np.add(cur, g, out=cur)
    else:
        grads[vid] = cur + g


def _acc_excl(grads: list, vid: int, g: np.ndarray, dtype) -> None:
    if grads[vid] is None and g.dtype == dtype:
        grads[vid] = g
    else:
        _acc(grads, vid, g, dtype)


# ---------------------------------------------------------------------------
# trace capture
# ---------------------------------------------------------------------------


class _TraceRecorder:
    """Tape hooks object that records every node creation in order."""

    def __init__(self) -> None:
        self.entries: list[tuple] = []

    def on_make(self, data, parents, backward) -> None:
        self.entries.append((data, tuple(parents), backward))

    def on_accumulate(self, tensor, grad) -> None:  # pragma: no cover
        pass  # no gradients flow during the traced forward


_BACKWARD_SUFFIX = ".<locals>.backward"


def _op_name(backward: Callable) -> str:
    qual = getattr(backward, "__qualname__", "")
    if not qual.endswith(_BACKWARD_SUFFIX):
        raise TraceError(f"unrecognized tape closure {qual!r}")
    return qual[: -len(_BACKWARD_SUFFIX)]


def _free_vars(backward: Callable) -> dict:
    cells = backward.__closure__ or ()
    return dict(zip(backward.__code__.co_freevars, (c.cell_contents for c in cells)))


class _Node:
    """Static description of one traced interior node."""

    __slots__ = ("vid", "shape", "dtype", "pv", "pshapes", "pdtypes", "preq", "cv")

    def __init__(self, vid, shape, dtype, pv, pshapes, pdtypes, preq, cv):
        self.vid = vid
        self.shape = shape
        self.dtype = dtype
        self.pv = pv
        self.pshapes = pshapes
        self.pdtypes = pdtypes
        self.preq = preq
        self.cv = cv


def _round_up(nbytes: int, granule: int = 64) -> int:
    return (nbytes + granule - 1) // granule * granule


#: Timeline position meaning "alive until after the replay returns" —
#: the buffer can never be pooled with a later one.
_END = 1 << 60


class _BuildCtx:
    """Build-time services for the op builders.

    Besides slot lookup, the context owns the *buffer arena*: every
    persistent kernel buffer (forward outputs, gradient edges, masks,
    scratch) is carved out of one contiguous byte block instead of
    being a separate heap allocation, and buffers whose live intervals
    on the replay timeline do not overlap share the same region.
    Builders run twice — a planning pass that records requests, then a
    binding pass that hands out 64-byte-aligned views in the identical
    deterministic order.  The compact, reused layout keeps the replay
    working set close to the dynamic tape's peak-live footprint (the
    original one-heap-block-per-buffer layout held every intermediate
    of the step simultaneously, and replay latency degraded once that
    stopped fitting in cache).

    Request roles (the ``role=`` argument of :meth:`empty`) name the
    buffer's lifetime class; :func:`_specialize` turns them into live
    intervals using the op-level metadata tables below:

    * ``fwd`` — the node's forward output, written at its forward
      position and alive until the last forward or backward read of
      its storage (views alias their parent's storage).
    * ``scratch`` — used only inside the node's own forward call.
    * ``mask`` — written by the forward, read once when the node fires.
    * ``grad`` — a gradient-edge buffer donated to a parent's grad
      accumulator when the node fires; alive until the last fire that
      can transitively hold it (``_END`` when that is a parameter).
    * ``bscratch`` — used only inside the node's own backward call.
    """

    def __init__(self, slot_map: dict[int, int]):
        self.slot_map = slot_map
        self._phase = "plan"
        #: planning pass: one (role, nbytes, vid) triple per request.
        self.requests: list[tuple[str, int, int]] = []
        self._offsets: list[int] = []
        self._base: np.ndarray | None = None
        self._next = 0
        #: the node whose builder is currently running (set by the
        #: specializer around each builder call).
        self.node: _Node | None = None
        self.arena_nbytes = 0
        self.requested_nbytes = 0

    def slot_for(self, value) -> int | None:
        """Slot index for a closure-captured array, or None if static."""
        if isinstance(value, np.ndarray):
            return self.slot_map.get(id(value))
        return None

    def empty(self, shape, dtype, role: str = "fwd") -> np.ndarray:
        """An uninitialized persistent buffer, arena-backed when bound."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if self._phase == "plan":
            self.requests.append((role, nbytes, self.node.vid))
            return np.empty(shape, dtype)
        offset = self._offsets[self._next]
        self._next += 1
        return self._base[offset : offset + nbytes].view(dtype).reshape(shape)

    def bind_arena(self, intervals: list[tuple[int, int]]) -> None:
        """Assign arena regions from the requests' live intervals.

        ``intervals[i]`` is the (birth, death) of ``requests[i]`` on
        the replay timeline.  Regions are reused across requests of the
        same rounded size whose intervals are disjoint: a region freed
        at ``death`` is available to births strictly after it.
        """
        order = sorted(
            range(len(self.requests)), key=lambda i: (intervals[i][0], i)
        )
        free: dict[int, list[list]] = {}
        offsets = [0] * len(self.requests)
        cursor = 0
        requested = 0
        for i in order:
            _, nbytes, _ = self.requests[i]
            birth, death = intervals[i]
            size = _round_up(nbytes)
            requested += size
            bucket = free.setdefault(size, [])
            for entry in bucket:
                if entry[1] < birth:
                    offsets[i] = entry[0]
                    entry[1] = death
                    break
            else:
                offsets[i] = cursor
                cursor += size
                bucket.append([cursor - size, death])
        self._offsets = offsets
        # A float64 base guarantees 8-byte alignment for every view
        # (offsets are multiples of 64).
        self._base = np.empty(
            max(_round_up(cursor), 64) // 8, np.float64
        ).view(np.uint8)
        self.arena_nbytes = cursor
        self.requested_nbytes = requested
        self._next = 0
        self._phase = "bind"


_BUILDERS: dict[str, Callable] = {}


def _op(name: str):
    def register(builder):
        _BUILDERS[name] = builder
        return builder

    return register


# ---------------------------------------------------------------------------
# op kernels
# ---------------------------------------------------------------------------
# Each builder returns ``(fwd, bwd)`` closures:
#   fwd(vals, slots)            — writes vals[node.vid]
#   bwd(g, vals, grads, slots)  — accumulates into the parents' grads
# ``bwd`` is discarded for nodes that do not require grad.  Kernels
# mirror the dynamic closures' numpy expressions exactly (same ufuncs,
# same evaluation order) so results are bitwise identical; the only
# liberties taken are preallocated ``out=`` buffers and sharing of
# subexpressions the dynamic code evaluates repeatedly to equal values.


@_op("Tensor.__add__")
def _b_add(b, n):
    ov = n.vid
    av, bv = n.pv
    areq, breq = n.preq
    ash, bsh = n.pshapes
    adt, bdt = n.pdtypes
    same_a = ash == n.shape
    same_b = bsh == n.shape
    buf = b.empty(n.shape, n.dtype)

    def fwd(vals, slots):
        vals[ov] = np.add(vals[av], vals[bv], out=buf)

    def bwd(g, vals, grads, slots):
        if areq:
            _acc_excl(grads, av, g if same_a else unbroadcast(g, ash), adt)
        if breq:
            gb = g if same_b else unbroadcast(g, bsh)
            if gb is g:  # pass-through grad may reach a sibling: copy path
                _acc(grads, bv, gb, bdt)
            else:
                _acc_excl(grads, bv, gb, bdt)

    return fwd, bwd


@_op("Tensor.__sub__")
def _b_sub(b, n):
    ov = n.vid
    av, bv = n.pv
    areq, breq = n.preq
    ash, bsh = n.pshapes
    adt, bdt = n.pdtypes
    same_a = ash == n.shape
    buf = b.empty(n.shape, n.dtype)
    ebuf = b.empty(n.shape, bdt, role="grad") if breq and bsh == n.shape else None

    def fwd(vals, slots):
        vals[ov] = np.subtract(vals[av], vals[bv], out=buf)

    def bwd(g, vals, grads, slots):
        if areq:
            _acc_excl(grads, av, g if same_a else unbroadcast(g, ash), adt)
        if breq:
            if ebuf is not None:
                _acc_excl(grads, bv, np.negative(g, out=ebuf), bdt)
            else:
                _acc_excl(grads, bv, unbroadcast(np.negative(g), bsh), bdt)

    return fwd, bwd


@_op("Tensor.__mul__")
def _b_mul(b, n):
    ov = n.vid
    av, bv = n.pv
    areq, breq = n.preq
    ash, bsh = n.pshapes
    adt, bdt = n.pdtypes
    buf = b.empty(n.shape, n.dtype)
    ebuf_a = b.empty(ash, adt, role="grad") if areq and ash == n.shape else None
    ebuf_b = b.empty(bsh, bdt, role="grad") if breq and bsh == n.shape else None

    def fwd(vals, slots):
        vals[ov] = np.multiply(vals[av], vals[bv], out=buf)

    def bwd(g, vals, grads, slots):
        if areq:
            if ebuf_a is not None:
                _acc_excl(grads, av, np.multiply(g, vals[bv], out=ebuf_a), adt)
            else:
                _acc_excl(grads, av, unbroadcast(g * vals[bv], ash), adt)
        if breq:
            if ebuf_b is not None:
                _acc_excl(grads, bv, np.multiply(g, vals[av], out=ebuf_b), bdt)
            else:
                _acc_excl(grads, bv, unbroadcast(g * vals[av], bsh), bdt)

    return fwd, bwd


@_op("Tensor.__truediv__")
def _b_truediv(b, n):
    ov = n.vid
    av, bv = n.pv
    areq, breq = n.preq
    ash, bsh = n.pshapes
    adt, bdt = n.pdtypes
    buf = b.empty(n.shape, n.dtype)
    ebuf_a = b.empty(ash, adt, role="grad") if areq and ash == n.shape else None

    def fwd(vals, slots):
        vals[ov] = np.divide(vals[av], vals[bv], out=buf)

    def bwd(g, vals, grads, slots):
        if areq:
            if ebuf_a is not None:
                _acc_excl(grads, av, np.divide(g, vals[bv], out=ebuf_a), adt)
            else:
                _acc_excl(grads, av, unbroadcast(g / vals[bv], ash), adt)
        if breq:
            _acc_excl(
                grads, bv, unbroadcast(-g * vals[av] / (vals[bv] ** 2), bsh), bdt
            )

    return fwd, bwd


@_op("Tensor.__neg__")
def _b_neg(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    buf = b.empty(n.shape, n.dtype)
    ebuf = b.empty(n.shape, pdt, role="grad") if preq else None

    def fwd(vals, slots):
        vals[ov] = np.negative(vals[pv], out=buf)

    def bwd(g, vals, grads, slots):
        if preq:
            _acc_excl(grads, pv, np.negative(g, out=ebuf), pdt)

    return fwd, bwd


@_op("Tensor.__pow__")
def _b_pow(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    exponent = n.cv["exponent"]
    buf = b.empty(n.shape, n.dtype)

    def fwd(vals, slots):
        vals[ov] = np.power(vals[pv], exponent, out=buf)

    def bwd(g, vals, grads, slots):
        if preq:
            _acc_excl(grads, pv, g * exponent * vals[pv] ** (exponent - 1), pdt)

    return fwd, bwd


@_op("Tensor.__matmul__")
def _b_matmul(b, n):
    ov = n.vid
    av, bv = n.pv
    areq, breq = n.preq
    ash, bsh = n.pshapes
    adt, bdt = n.pdtypes
    a_nd, b_nd = len(ash), len(bsh)
    buf = b.empty(n.shape, n.dtype)
    # g @ b^T lands directly at a's shape whenever b is a plain matrix
    # and a carries the batch dims — the GEMM-heavy common case.
    gemm_a = (
        b_nd == 2 and a_nd >= 2 and n.shape[:-1] + (bsh[-2],) == ash
    )
    ebuf_a = b.empty(ash, adt, role="grad") if areq and gemm_a else None
    gemm_b = a_nd == 2 and b_nd == 2 and (ash[-1], n.shape[-1]) == bsh
    ebuf_b = b.empty(bsh, bdt, role="grad") if breq and gemm_b else None

    def fwd(vals, slots):
        vals[ov] = np.matmul(vals[av], vals[bv], out=buf)

    def bwd(g, vals, grads, slots):
        if areq:
            if ebuf_a is not None:
                grad_a = np.matmul(
                    g, np.swapaxes(vals[bv], -1, -2), out=ebuf_a
                )
            else:
                if b_nd == 1:
                    grad_a = np.expand_dims(g, -1) * vals[bv]
                else:
                    grad_a = g @ np.swapaxes(vals[bv], -1, -2)
                if a_nd == 1 and grad_a.ndim > 1:
                    grad_a = grad_a.sum(axis=tuple(range(grad_a.ndim - 1)))
                grad_a = unbroadcast(grad_a, ash)
            _acc_excl(grads, av, grad_a, adt)
        if breq:
            if ebuf_b is not None:
                grad_b = np.matmul(np.swapaxes(vals[av], -1, -2), g, out=ebuf_b)
            else:
                if a_nd == 1:
                    grad_b = (
                        np.outer(vals[av], g)
                        if g.ndim == 1
                        else np.expand_dims(vals[av], -1) * g
                    )
                elif b_nd == 1:
                    grad_b = (
                        (np.expand_dims(g, -1) * vals[av])
                        .reshape(-1, ash[-1])
                        .sum(axis=0)
                    )
                else:
                    grad_b = np.swapaxes(vals[av], -1, -2) @ g
                grad_b = unbroadcast(grad_b, bsh)
            _acc_excl(grads, bv, grad_b, bdt)

    return fwd, bwd


@_op("Tensor.sum")
def _b_sum(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    axis = n.cv["axis"]
    keepdims = n.cv["keepdims"]
    input_shape = n.cv["input_shape"]
    buf = b.empty(n.shape, n.dtype)
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        expand_axes = sorted(a % len(input_shape) for a in axes)
    else:
        expand_axes = ()

    def fwd(vals, slots):
        vals[ov] = np.sum(vals[pv], axis=axis, keepdims=keepdims, out=buf)

    def bwd(g, vals, grads, slots):
        if not preq:
            return
        for a in expand_axes:
            g = np.expand_dims(g, a)
        # Read-only broadcast view, donated exactly as the dynamic op does.
        _acc_excl(grads, pv, np.broadcast_to(g, input_shape), pdt)

    return fwd, bwd


@_op("Tensor.max")
def _b_max(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    (psh,) = n.pshapes
    axis = n.cv["axis"]
    keepdims = n.cv["keepdims"]
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        expand_axes = sorted(a % len(psh) for a in axes)
    else:
        expand_axes = ()

    def fwd(vals, slots):
        vals[ov] = vals[pv].max(axis=axis, keepdims=keepdims)

    def bwd(g, vals, grads, slots):
        if not preq:
            return
        out = vals[ov]
        for a in expand_axes:
            g = np.expand_dims(g, a)
            out = np.expand_dims(out, a)
        mask = (vals[pv] == out).astype(pdt)
        mask = (
            mask / mask.sum(axis=axis, keepdims=True)
            if axis is not None
            else mask / mask.sum()
        )
        _acc_excl(grads, pv, mask * g, pdt)

    return fwd, bwd


def _view_reshape(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    original = n.cv["original"]
    shape = n.shape

    def fwd(vals, slots):
        vals[ov] = vals[pv].reshape(shape)

    def bwd(g, vals, grads, slots):
        if preq:
            _acc_excl(grads, pv, g.reshape(original), pdt)

    return fwd, bwd


_BUILDERS["Tensor.reshape"] = _view_reshape
# np.squeeze is a reshape view with identical values; backward matches.
_BUILDERS["Tensor.squeeze"] = _view_reshape


@_op("Tensor.transpose")
def _b_transpose(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    inverse = n.cv["inverse"]
    axes = tuple(int(a) for a in np.argsort(inverse))

    def fwd(vals, slots):
        vals[ov] = vals[pv].transpose(axes)

    def bwd(g, vals, grads, slots):
        if preq:
            _acc_excl(grads, pv, g.transpose(inverse), pdt)

    return fwd, bwd


@_op("Tensor.expand_dims")
def _b_expand_dims(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    axis = n.cv["axis"]

    def fwd(vals, slots):
        vals[ov] = np.expand_dims(vals[pv], axis)

    def bwd(g, vals, grads, slots):
        if preq:
            _acc_excl(grads, pv, np.squeeze(g, axis=axis), pdt)

    return fwd, bwd


@_op("Tensor.__getitem__")
def _b_getitem(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (psh,) = n.pshapes
    (pdt,) = n.pdtypes
    key = n.cv["key"]
    key_slot = b.slot_for(key)
    take = (
        key_slot is not None
        and isinstance(key, np.ndarray)
        and key.dtype.kind in "iu"
        and len(psh) >= 1
    )
    zeros_holder: list = [None]  # lazily allocated persistent scatter buffer

    if take:
        # Deliberately *not* arena-backed: ``np.take`` with ``out=`` and
        # the default ``mode="raise"`` falls off numpy's fast path (~4x
        # slower than the allocating form), so a fresh output per replay
        # is the cheaper option here.

        def fwd(vals, slots):
            vals[ov] = np.take(vals[pv], slots[key_slot], axis=0)

    else:

        def fwd(vals, slots):
            vals[ov] = vals[pv][key]

    def bwd(g, vals, grads, slots):
        if not preq:
            return
        k = slots[key_slot] if key_slot is not None else key
        cur = grads[pv]
        if (
            cur is not None
            and cur.flags.writeable
            and cur.shape == psh
            and cur.dtype == pdt
        ):
            _index_add(cur, k, g)
            return
        full = zeros_holder[0]
        if full is None:
            full = np.zeros(psh, pdt)
            zeros_holder[0] = full
        else:
            full.fill(0.0)
        _index_add(full, k, g)
        _acc_excl(grads, pv, full, pdt)

    return fwd, bwd


@_op("Tensor.exp")
def _b_exp(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    buf = b.empty(n.shape, n.dtype)
    ebuf = b.empty(n.shape, pdt, role="grad") if preq else None

    def fwd(vals, slots):
        vals[ov] = np.exp(vals[pv], out=buf)

    def bwd(g, vals, grads, slots):
        if preq:
            _acc_excl(grads, pv, np.multiply(g, vals[ov], out=ebuf), pdt)

    return fwd, bwd


@_op("Tensor.log")
def _b_log(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    buf = b.empty(n.shape, n.dtype)
    ebuf = b.empty(n.shape, pdt, role="grad") if preq else None

    def fwd(vals, slots):
        vals[ov] = np.log(vals[pv], out=buf)

    def bwd(g, vals, grads, slots):
        if preq:
            _acc_excl(grads, pv, np.divide(g, vals[pv], out=ebuf), pdt)

    return fwd, bwd


@_op("Tensor.tanh")
def _b_tanh(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    buf = b.empty(n.shape, n.dtype)
    ebuf = b.empty(n.shape, pdt, role="grad") if preq else None

    def fwd(vals, slots):
        vals[ov] = np.tanh(vals[pv], out=buf)

    def bwd(g, vals, grads, slots):
        if preq:
            # grad * (1 - out**2); ndarray ** 2 dispatches np.square.
            np.square(vals[ov], out=ebuf)
            np.subtract(1.0, ebuf, out=ebuf)
            _acc_excl(grads, pv, np.multiply(g, ebuf, out=ebuf), pdt)

    return fwd, bwd


@_op("Tensor.sigmoid")
def _b_sigmoid(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    buf = b.empty(n.shape, n.dtype)
    s1 = b.empty(n.shape, n.dtype, role="scratch")
    s2 = b.empty(n.shape, n.dtype, role="scratch")
    e1 = b.empty(n.shape, pdt, role="grad") if preq else None
    e2 = b.empty(n.shape, pdt, role="bscratch") if preq else None

    def fwd(vals, slots):
        x = vals[pv]
        # The dynamic op evaluates exp(-|x|) three times to identical
        # bits; compute it once and reuse it — values are unchanged.
        np.abs(x, out=s1)
        np.negative(s1, out=s1)
        np.exp(s1, out=s1)  # e = exp(-|x|)
        np.add(1.0, s1, out=s2)  # 1 + e
        np.divide(s1, s2, out=buf)  # e / (1 + e)   (x < 0 branch)
        np.divide(1.0, s2, out=s2)  # 1 / (1 + e)   (x >= 0 branch)
        np.copyto(buf, s2, where=x >= 0)
        vals[ov] = buf

    def bwd(g, vals, grads, slots):
        if preq:
            out = vals[ov]
            np.multiply(g, out, out=e1)
            np.subtract(1.0, out, out=e2)
            _acc_excl(grads, pv, np.multiply(e1, e2, out=e1), pdt)

    return fwd, bwd


@_op("Tensor.abs")
def _b_abs(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    buf = b.empty(n.shape, n.dtype)
    ebuf = b.empty(n.shape, pdt, role="grad") if preq else None

    def fwd(vals, slots):
        vals[ov] = np.abs(vals[pv], out=buf)

    def bwd(g, vals, grads, slots):
        if preq:
            np.sign(vals[pv], out=ebuf)
            _acc_excl(grads, pv, np.multiply(g, ebuf, out=ebuf), pdt)

    return fwd, bwd


@_op("Tensor.relu")
def _b_relu(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    buf = b.empty(n.shape, n.dtype)
    mbuf = b.empty(n.shape, bool, role="bscratch") if preq else None
    ebuf = b.empty(n.shape, pdt, role="grad") if preq else None

    def fwd(vals, slots):
        vals[ov] = np.maximum(vals[pv], 0.0, out=buf)

    def bwd(g, vals, grads, slots):
        if preq:
            np.greater(vals[pv], 0, out=mbuf)
            _acc_excl(grads, pv, np.multiply(g, mbuf, out=ebuf), pdt)

    return fwd, bwd


@_op("Tensor.clip")
def _b_clip(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    low = n.cv["low"]
    high = n.cv["high"]

    def fwd(vals, slots):
        vals[ov] = np.clip(vals[pv], low, high)

    def bwd(g, vals, grads, slots):
        if not preq:
            return
        x = vals[pv]
        mask = np.ones_like(x)
        if low is not None:
            mask = mask * (x >= low)
        if high is not None:
            mask = mask * (x <= high)
        _acc_excl(grads, pv, g * mask, pdt)

    return fwd, bwd


@_op("concat")
def _b_concat(b, n):
    ov = n.vid
    pvs = n.pv
    preqs = n.preq
    pdts = n.pdtypes
    axis = n.cv["axis"]
    offsets = n.cv["offsets"]
    ndim = len(n.shape)
    slices = []
    for start, stop in zip(offsets[:-1], offsets[1:]):
        index = [slice(None)] * ndim
        index[axis] = slice(start, stop)
        slices.append(tuple(index))
    buf = b.empty(n.shape, n.dtype)

    def fwd(vals, slots):
        vals[ov] = np.concatenate([vals[v] for v in pvs], axis=axis, out=buf)

    def bwd(g, vals, grads, slots):
        for pv, preq, pdt, index in zip(pvs, preqs, pdts, slices):
            if preq:
                # Disjoint views of the node's grad: exclusive per parent.
                _acc_excl(grads, pv, g[index], pdt)

    return fwd, bwd


@_op("stack")
def _b_stack(b, n):
    ov = n.vid
    pvs = n.pv
    preqs = n.preq
    pdts = n.pdtypes
    axis = n.cv["axis"]
    buf = b.empty(n.shape, n.dtype)

    def fwd(vals, slots):
        vals[ov] = np.stack([vals[v] for v in pvs], axis=axis, out=buf)

    def bwd(g, vals, grads, slots):
        pieces = np.moveaxis(g, axis, 0)
        for pv, preq, pdt, piece in zip(pvs, preqs, pdts, pieces):
            if preq:
                _acc_excl(grads, pv, piece, pdt)

    return fwd, bwd


@_op("maximum")
def _b_maximum(b, n):
    ov = n.vid
    av, bv = n.pv
    areq, breq = n.preq
    ash, bsh = n.pshapes
    adt, bdt = n.pdtypes
    buf = b.empty(n.shape, n.dtype)
    wins = b.empty(n.shape, bool, role="mask")
    ebuf_a = b.empty(ash, adt, role="grad") if areq and ash == n.shape else None
    ebuf_b = b.empty(bsh, bdt, role="grad") if breq and bsh == n.shape else None

    def fwd(vals, slots):
        np.greater_equal(vals[av], vals[bv], out=wins)
        vals[ov] = np.maximum(vals[av], vals[bv], out=buf)

    def bwd(g, vals, grads, slots):
        if areq:
            if ebuf_a is not None:
                _acc_excl(grads, av, np.multiply(g, wins, out=ebuf_a), adt)
            else:
                _acc_excl(grads, av, unbroadcast(g * wins, ash), adt)
        if breq:
            if ebuf_b is not None:
                _acc_excl(grads, bv, np.multiply(g, ~wins, out=ebuf_b), bdt)
            else:
                _acc_excl(grads, bv, unbroadcast(g * ~wins, bsh), bdt)

    return fwd, bwd


@_op("softmax")
def _b_softmax(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    axis = n.cv["axis"]
    buf = b.empty(n.shape, n.dtype)
    s1 = b.empty(n.shape, n.dtype, role="scratch")
    e1 = b.empty(n.shape, pdt, role="grad") if preq else None

    def fwd(vals, slots):
        x = vals[pv]
        np.subtract(x, x.max(axis=axis, keepdims=True), out=s1)
        np.exp(s1, out=s1)
        vals[ov] = np.divide(s1, s1.sum(axis=axis, keepdims=True), out=buf)

    def bwd(g, vals, grads, slots):
        if preq:
            out = vals[ov]
            np.multiply(g, out, out=e1)
            inner = e1.sum(axis=axis, keepdims=True)
            np.subtract(g, inner, out=e1)
            _acc_excl(grads, pv, np.multiply(out, e1, out=e1), pdt)

    return fwd, bwd


@_op("log_softmax")
def _b_log_softmax(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    axis = n.cv["axis"]

    def fwd(vals, slots):
        x = vals[pv]
        shifted = x - x.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        vals[ov] = shifted - log_norm

    def bwd(g, vals, grads, slots):
        if preq:
            soft = np.exp(vals[ov])
            _acc_excl(
                grads, pv, g - soft * g.sum(axis=axis, keepdims=True), pdt
            )

    return fwd, bwd


@_op("leaky_relu")
def _b_leaky_relu(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    negative_slope = n.cv["negative_slope"]

    def fwd(vals, slots):
        x = vals[pv]
        vals[ov] = np.where(x > 0, x, negative_slope * x)

    def bwd(g, vals, grads, slots):
        if preq:
            x = vals[pv]
            _acc_excl(grads, pv, g * np.where(x > 0, 1.0, negative_slope), pdt)

    return fwd, bwd


@_op("broadcast_to")
def _b_broadcast_to(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (psh,) = n.pshapes
    (pdt,) = n.pdtypes
    shape = n.shape

    def fwd(vals, slots):
        vals[ov] = np.broadcast_to(vals[pv], shape)

    def bwd(g, vals, grads, slots):
        if preq:
            g2 = unbroadcast(g, psh)
            if g2 is g:  # pass-through: copying path, as _give does
                _acc(grads, pv, g2, pdt)
            else:
                _acc_excl(grads, pv, g2, pdt)

    return fwd, bwd


@_op("neighbor_scores")
def _b_neighbor_scores(b, n):
    ov = n.vid
    rv, qv = n.pv
    rreq, qreq = n.preq
    rsh, qsh = n.pshapes
    rdt, qdt = n.pdtypes
    buf = b.empty(n.shape, n.dtype)
    ebuf_r = b.empty(rsh, rdt, role="grad") if rreq else None
    ebuf_q = b.empty(qsh, qdt, role="grad") if qreq else None

    def fwd(vals, slots):
        vals[ov] = np.einsum("bwkd,bd->bwk", vals[rv], vals[qv], out=buf)

    def bwd(g, vals, grads, slots):
        if rreq:
            _acc_excl(
                grads, rv, np.einsum("bwk,bd->bwkd", g, vals[qv], out=ebuf_r), rdt
            )
        if qreq:
            _acc_excl(
                grads, qv, np.einsum("bwk,bwkd->bd", g, vals[rv], out=ebuf_q), qdt
            )

    return fwd, bwd


@_op("neighbor_mix")
def _b_neighbor_mix(b, n):
    ov = n.vid
    wv, nv = n.pv
    wreq, nreq = n.preq
    wsh, nsh = n.pshapes
    wdt, ndt = n.pdtypes
    buf = b.empty(n.shape, n.dtype)
    ebuf_w = b.empty(wsh, wdt, role="grad") if wreq else None
    ebuf_n = b.empty(nsh, ndt, role="grad") if nreq else None

    def fwd(vals, slots):
        vals[ov] = np.einsum("bwk,bwkd->bwd", vals[wv], vals[nv], out=buf)

    def bwd(g, vals, grads, slots):
        if wreq:
            _acc_excl(
                grads, wv, np.einsum("bwd,bwkd->bwk", g, vals[nv], out=ebuf_w), wdt
            )
        if nreq:
            _acc_excl(
                grads, nv, np.einsum("bwk,bwd->bwkd", vals[wv], g, out=ebuf_n), ndt
            )

    return fwd, bwd


@_op("row_gather")
def _b_row_gather(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (pdt,) = n.pdtypes
    cols = n.cv["cols"]
    batch = n.cv["batch"]
    width = n.cv["width"]
    col_slot = b.slot_for(cols)
    row_offsets = np.arange(batch, dtype=np.int64)[:, None] * width
    cellbuf = b.empty(cols.shape, np.int64, role="bscratch")

    def fwd(vals, slots):
        k = slots[col_slot] if col_slot is not None else cols
        vals[ov] = np.take_along_axis(vals[pv], k, axis=1)

    def bwd(g, vals, grads, slots):
        if not preq:
            return
        k = slots[col_slot] if col_slot is not None else cols
        np.add(k, row_offsets, out=cellbuf)
        full = np.bincount(
            cellbuf.ravel(), weights=g.ravel(), minlength=batch * width
        ).reshape(batch, width)
        _acc_excl(grads, pv, full, pdt)

    return fwd, bwd


@_op("tile")
def _b_tile(b, n):
    ov = n.vid
    (pv,) = n.pv
    (preq,) = n.preq
    (psh,) = n.pshapes
    (pdt,) = n.pdtypes
    interleaved = n.cv["interleaved"]
    rep_axes = n.cv["rep_axes"]
    full_reps = tuple(interleaved[0::2])

    def fwd(vals, slots):
        vals[ov] = np.tile(vals[pv], full_reps)

    def bwd(g, vals, grads, slots):
        if preq:
            folded = g.reshape(interleaved).sum(axis=rep_axes)
            _acc_excl(grads, pv, folded.reshape(psh), pdt)

    return fwd, bwd


#: Ops the specializer can capture.  ``where`` and ``masked_softmax`` are
#: deliberately absent: their backward closures bake in batch-dependent
#: arrays (the condition / the mask) that slots cannot rebind, so steps
#: using them fall back to the dynamic tape.
SUPPORTED_OPS = frozenset(_BUILDERS)


# ---------------------------------------------------------------------------
# liveness metadata
# ---------------------------------------------------------------------------
# Per-op facts the buffer planner needs.  Everything here errs on the
# long side: an op missing from a table just keeps its buffers alive
# longer than strictly necessary, which costs arena bytes, never
# correctness.

#: Ops whose forward output is (or may be) a *view* of their first
#: parent's storage — reads of the output are reads of the parent's
#: buffer.  ``__getitem__`` is listed conservatively: its basic-index
#: path returns a view, and its ``np.take`` path allocates a fresh
#: output, so treating both as aliases only over-extends the parent's
#: lifetime (safe).
_VIEW_OPS = frozenset(
    {
        "Tensor.reshape",
        "Tensor.squeeze",
        "Tensor.transpose",
        "Tensor.expand_dims",
        "Tensor.__getitem__",
        "broadcast_to",
    }
)

#: Which storages an op's *backward* closure reads when it fires:
#: ``"p<i>"`` is the i-th parent's value, ``"out"`` the op's own output.
_BWD_READS: dict[str, tuple[str, ...]] = {
    "Tensor.__mul__": ("p0", "p1"),
    "Tensor.__truediv__": ("p0", "p1"),
    "Tensor.__pow__": ("p0",),
    "Tensor.__matmul__": ("p0", "p1"),
    "Tensor.max": ("p0", "out"),
    "Tensor.exp": ("out",),
    "Tensor.log": ("p0",),
    "Tensor.tanh": ("out",),
    "Tensor.sigmoid": ("out",),
    "Tensor.abs": ("p0",),
    "Tensor.relu": ("p0",),
    "Tensor.clip": ("p0",),
    "softmax": ("out",),
    "log_softmax": ("out",),
    "leaky_relu": ("p0",),
    "neighbor_scores": ("p0", "p1"),
    "neighbor_mix": ("p0", "p1"),
}

#: Parent positions an op's backward may hand its incoming gradient to
#: *by identity or as a view* (donation without a copy).  A gradient
#: buffer donated through such a chain stays alive until the last fire
#: in the chain — or forever, when the chain reaches a parameter leaf.
_PASS_THROUGH: dict[str, tuple[int, ...] | str] = {
    "Tensor.__add__": (0,),
    "Tensor.__sub__": (0,),
    "Tensor.sum": (0,),
    "Tensor.reshape": (0,),
    "Tensor.squeeze": (0,),
    "Tensor.transpose": (0,),
    "Tensor.expand_dims": (0,),
    "concat": "all",
    "stack": "all",
}


def _plan_intervals(
    requests: list[tuple[str, int, int]],
    nodes: list,
    fire_vids: list[int],
    root_vid: int,
) -> list[tuple[int, int]]:
    """(birth, death) on the replay timeline for every buffer request.

    The timeline is one pass of :meth:`CompiledProgram.replay`: forward
    ops occupy positions ``0..F-1`` in execution order, fires occupy
    ``F..F+B-1`` in schedule order, and :data:`_END` means "alive when
    replay returns" (the loss value and every donated parameter
    gradient).  Deaths are conservative — each one is the latest
    position any reader listed in the metadata tables could touch the
    buffer, so two requests share arena space only when their intervals
    are provably disjoint.
    """
    forward_len = len(nodes)
    fwd_pos: dict[int, int] = {}
    op_of: dict[int, str] = {}
    node_of: dict[int, _Node] = {}
    needs: dict[int, bool] = {}
    for position, (op, _, node, needs_grad) in enumerate(nodes):
        fwd_pos[node.vid] = position
        op_of[node.vid] = op
        node_of[node.vid] = node
        needs[node.vid] = needs_grad
    fire_pos = {
        vid: forward_len + index for index, vid in enumerate(fire_vids)
    }

    # Storage roots: the arena-owned buffer (if any) a node's value
    # lives in; views attribute their reads to the aliased owner.
    fwd_owner = {vid for role, _, vid in requests if role == "fwd"}
    root_of: dict[int, int | None] = {}
    for op, _, node, _ in nodes:
        if node.vid in fwd_owner:
            root_of[node.vid] = node.vid
        elif op in _VIEW_OPS and node.pv:
            root_of[node.vid] = root_of.get(node.pv[0])
        else:
            root_of[node.vid] = None

    death = {vid: fwd_pos[vid] for vid in fwd_owner}

    def extend(storage_vid: int | None, position: int) -> None:
        if storage_vid is not None and position > death[storage_vid]:
            death[storage_vid] = position

    for op, _, node, needs_grad in nodes:
        for pvid in node.pv:
            extend(root_of.get(pvid), fwd_pos[node.vid])
        if needs_grad:
            here = fire_pos[node.vid]
            for tag in _BWD_READS.get(op, ()):
                if tag == "out":
                    extend(root_of.get(node.vid), here)
                else:
                    index = int(tag[1:])
                    if index < len(node.pv):
                        extend(root_of.get(node.pv[index]), here)
    # The loss value is read after the whole program has run.
    extend(root_of.get(root_vid), _END)

    # How long a donated gradient buffer stays alive: until the last
    # fire reachable over pass-through edges — forever when the chain
    # can reach a leaf (the buffer may become a parameter's ``.grad``).
    chain: dict[int, int] = {}

    def chain_death(vid: int) -> int:
        known = chain.get(vid)
        if known is not None:
            return known
        if vid not in fwd_pos:  # leaf: grads outlive the replay
            result = _END
        elif not needs[vid]:
            result = 0
        else:
            result = fire_pos[vid]
            targets = _PASS_THROUGH.get(op_of[vid])
            if targets is not None:
                node = node_of[vid]
                indices = (
                    range(len(node.pv)) if targets == "all" else targets
                )
                for index in indices:
                    if index < len(node.pv) and node.preq[index]:
                        result = max(result, chain_death(node.pv[index]))
        chain[vid] = result
        return result

    intervals: list[tuple[int, int]] = []
    for role, _, vid in requests:
        fired = fire_pos.get(vid, fwd_pos[vid])
        if role == "fwd":
            intervals.append((fwd_pos[vid], death[vid]))
        elif role == "scratch":
            intervals.append((fwd_pos[vid], fwd_pos[vid]))
        elif role == "mask":
            intervals.append((fwd_pos[vid], fired))
        elif role == "bscratch":
            intervals.append((fired, fired))
        elif role == "grad":
            node = node_of[vid]
            limit = fired
            for index, pvid in enumerate(node.pv):
                if node.preq[index]:
                    limit = max(limit, chain_death(pvid))
            intervals.append((fired, limit))
        else:  # pragma: no cover - builder bug
            raise TraceError(f"unknown buffer role {role!r}")
    return intervals


# ---------------------------------------------------------------------------
# specialization
# ---------------------------------------------------------------------------


class CompiledProgram:
    """A specialized train step: flat forward kernels + backward schedule.

    Obtained from :func:`trace_step`; not constructed directly.  One
    program is valid for exactly one shape signature — the slot arrays
    passed to :meth:`replay` must match the traced shapes/dtypes slot
    for slot, or :class:`TraceError` is raised (callers treat that as a
    fallback trigger, not an error).
    """

    def __init__(
        self,
        num_values: int,
        forward: list,
        fire: list,
        const_leaves: list,
        slot_leaves: list,
        param_leaves: list,
        slot_sig: list,
        root_vid: int,
        root_shape: tuple,
        root_dtype,
        arena_nbytes: int = 0,
        requested_nbytes: int = 0,
    ):
        self._vals: list = [None] * num_values
        self._grads: list = [None] * num_values
        self._forward = forward
        self._fire = fire
        self._slot_leaves = slot_leaves
        self._param_leaves = param_leaves
        self._slot_sig = slot_sig
        self._root_vid = root_vid
        self._root_shape = root_shape
        self._root_dtype = root_dtype
        for vid, array in const_leaves:
            self._vals[vid] = array
        #: Bytes of the pooled kernel-buffer arena, and the bytes the
        #: kernels requested before liveness pooling collapsed disjoint
        #: intervals onto shared regions.
        self.arena_nbytes = arena_nbytes
        self.requested_nbytes = requested_nbytes
        self.replays = 0

    @property
    def num_ops(self) -> int:
        """Number of captured interior ops."""
        return len(self._forward)

    @property
    def num_slots(self) -> int:
        """Number of replayable input slots."""
        return len(self._slot_sig)

    @property
    def num_parameters(self) -> int:
        """Number of trainable leaves receiving gradients."""
        return len(self._param_leaves)

    def check_slots(self, slot_arrays: Sequence[np.ndarray]) -> None:
        """Raise :class:`TraceError` unless the arrays match the signature."""
        if len(slot_arrays) != len(self._slot_sig):
            raise TraceError(
                f"slot count changed: traced {len(self._slot_sig)}, "
                f"got {len(slot_arrays)}"
            )
        for position, (array, (shape, dtype)) in enumerate(
            zip(slot_arrays, self._slot_sig)
        ):
            array = np.asarray(array)
            if array.shape != shape or array.dtype != dtype:
                raise TraceError(
                    f"slot {position} changed: traced {shape}/{dtype}, "
                    f"got {array.shape}/{array.dtype}"
                )

    def replay(self, slot_arrays: Sequence[np.ndarray]) -> float:
        """Run the program on a new batch of the traced signature.

        Assigns ``.grad`` on every trainable leaf (exactly what
        ``loss.backward()`` on the dynamic tape would produce, bit for
        bit) and returns the loss value.  Must not run while tape hooks
        are installed — the kernels bake in the pristine donation
        fast paths that hooks disable.
        """
        if tape_hooks_active():
            raise TraceError("cannot replay while tape hooks are installed")
        self.check_slots(slot_arrays)
        slots = list(slot_arrays)
        vals = self._vals
        grads = self._grads
        for vid, parameter, shape in self._param_leaves:
            data = parameter.data
            if data.shape != shape:
                raise TraceError("parameter shape changed since trace")
            vals[vid] = data
        for vid, slot_index in self._slot_leaves:
            vals[vid] = slots[slot_index]
        for fwd in self._forward:
            fwd(vals, slots)
        root = self._root_vid
        for vid in range(len(grads)):
            grads[vid] = None
        seed = np.ones(self._root_shape, self._root_dtype)
        grads[root] = seed
        for vid, bwd in self._fire:
            g = grads[vid]
            if g is None:
                continue
            if vid == root:
                # The dynamic scheduler hands the root closure a private
                # copy so donated views can never alias the kept grad.
                g = g.copy()
            bwd(g, vals, grads, slots)
            grads[vid] = None
        for vid, parameter, _ in self._param_leaves:
            parameter.grad = grads[vid]
            grads[vid] = None
        self.replays += 1
        return float(vals[root])


def _specialize(
    loss: Tensor, entries: list, slot_arrays: Sequence[np.ndarray]
) -> CompiledProgram:
    if not isinstance(loss, Tensor):
        raise TraceError("traced forward did not return a Tensor")
    if not loss.requires_grad or loss._backward is None:
        raise TraceError("traced loss is not connected to the tape")
    if loss.size != 1:
        raise TraceError("only scalar losses can be compiled")

    slot_map: dict[int, int] = {}
    slot_sig: list = []
    for index, array in enumerate(slot_arrays):
        array = np.asarray(array)
        slot_map.setdefault(id(array), index)
        slot_sig.append((array.shape, array.dtype))

    # Discover every tensor reachable from the loss.  This must happen
    # before loss.backward(), which frees _parents/_backward.
    tensors: list[Tensor] = []
    seen: set[int] = set()
    stack = [loss]
    while stack:
        tensor = stack.pop()
        if id(tensor) in seen:
            continue
        seen.add(id(tensor))
        tensors.append(tensor)
        stack.extend(tensor._parents)

    vid_of = {id(t): vid for vid, t in enumerate(tensors)}
    interiors = {id(t) for t in tensors if t._backward is not None}
    # Entries pair with graph nodes through the backward closure: _make
    # stores the exact closure object the hook saw, and every op call
    # creates a fresh one, so identity is collision-free.  (Output data
    # identity would not work — scalar-producing ops return np.float64,
    # which Tensor.__init__ re-wraps into a new 0-d array.)
    by_backward: dict[int, Tensor] = {
        id(t._backward): t for t in tensors if id(t) in interiors
    }

    # Leaves: trainable parameters, replayable slots, baked constants.
    const_leaves: list = []
    slot_leaves: list = []
    param_leaves: list = []
    for tensor in tensors:
        if id(tensor) in interiors:
            continue
        vid = vid_of[id(tensor)]
        if tensor.requires_grad:
            param_leaves.append((vid, tensor, tensor.data.shape))
        elif id(tensor.data) in slot_map:
            slot_leaves.append((vid, slot_map[id(tensor.data)]))
        else:
            const_leaves.append((vid, tensor.data))

    # Interior nodes, in recorded execution order.
    nodes: list[tuple[str, Callable, _Node, bool]] = []
    matched: set[int] = set()
    for data, parents, backward in entries:
        tensor = by_backward.get(id(backward))
        if tensor is None:
            continue  # not reachable from the loss: dead computation
        matched.add(id(tensor))
        op = _op_name(backward)
        builder = _BUILDERS.get(op)
        if builder is None:
            raise TraceError(f"op {op!r} is outside the compiled set")
        node = _Node(
            vid=vid_of[id(tensor)],
            shape=tensor.shape,
            dtype=tensor.dtype,
            pv=[vid_of[id(p)] for p in parents],
            pshapes=[p.shape for p in parents],
            pdtypes=[p.dtype for p in parents],
            preq=[p.requires_grad for p in parents],
            cv=_free_vars(backward),
        )
        nodes.append((op, builder, node, tensor.requires_grad))
    if len(matched) != len(interiors):
        raise TraceError(
            "graph contains nodes created outside the traced step"
        )

    # Precompute the backward firing schedule — the exact Kahn order
    # Tensor.backward() produces (discovery pass, then LIFO firing).
    # This runs *before* the builders so the buffer planner can place
    # every backward buffer on the replay timeline.
    parents_of = {
        vid_of[id(t)]: tuple(vid_of[id(p)] for p in t._parents) for t in tensors
    }
    requires = {vid_of[id(t)]: t.requires_grad for t in tensors}
    root_vid = vid_of[id(loss)]
    grad_interiors = {node.vid for _, _, node, needs_grad in nodes if needs_grad}
    pending: dict[int, int] = {}
    vstack = [root_vid]
    while vstack:
        vid = vstack.pop()
        for pvid in parents_of[vid]:
            if requires[pvid]:
                count = pending.get(pvid)
                if count is None:
                    pending[pvid] = 1
                    vstack.append(pvid)
                else:
                    pending[pvid] = count + 1
    fire_vids: list[int] = []
    vstack = [root_vid]
    while vstack:
        vid = vstack.pop()
        if vid in grad_interiors:
            fire_vids.append(vid)
        for pvid in parents_of[vid]:
            if requires[pvid]:
                remaining = pending[pvid] - 1
                pending[pvid] = remaining
                if remaining == 0:
                    vstack.append(pvid)

    # Builder pass one: record every buffer request (role, bytes, node).
    ctx = _BuildCtx(slot_map)
    for op, builder, node, needs_grad in nodes:
        ctx.node = node
        try:
            builder(ctx, node)
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise TraceError(f"cannot specialize {op!r}: {exc}") from exc

    # Plan live intervals and bind the pooled arena, then builder pass
    # two re-runs the builders in the identical order so every
    # ``ctx.empty`` hands out its planned arena view.
    ctx.bind_arena(
        _plan_intervals(ctx.requests, nodes, fire_vids, root_vid)
    )
    forward: list = []
    bwd_of: dict[int, Callable] = {}
    for op, builder, node, needs_grad in nodes:
        ctx.node = node
        try:
            fwd, bwd = builder(ctx, node)
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise TraceError(f"cannot specialize {op!r}: {exc}") from exc
        forward.append(fwd)
        if needs_grad:
            bwd_of[node.vid] = bwd
    fire = [(vid, bwd_of[vid]) for vid in fire_vids]

    return CompiledProgram(
        num_values=len(tensors),
        forward=forward,
        fire=fire,
        const_leaves=const_leaves,
        slot_leaves=slot_leaves,
        param_leaves=param_leaves,
        slot_sig=slot_sig,
        root_vid=root_vid,
        root_shape=loss.shape,
        root_dtype=loss.dtype,
        arena_nbytes=ctx.arena_nbytes,
        requested_nbytes=ctx.requested_nbytes,
    )


def trace_step(
    forward_fn: Callable[[], Tensor], slot_arrays: Sequence[np.ndarray]
) -> tuple[CompiledProgram | None, Tensor, str | None]:
    """Capture one step and specialize it into a :class:`CompiledProgram`.

    Runs ``forward_fn`` with a recording hooks object installed on the
    tape-hook registry, then specializes the captured op sequence
    against ``slot_arrays`` — the batch-dependent numpy arrays the
    forward consumed *by object identity* (see
    ``TrainStepPlan.slot_arrays``).

    Returns ``(program, loss, failure)``.  The forward pass always
    completes and ``loss`` is always a live, backpropagatable tensor, so
    the traced step itself can still train on the dynamic tape (call
    ``loss.backward()`` after this returns — the graph walk happens
    here, before backward frees it).  On specialization failure
    ``program`` is None and ``failure`` holds the reason.

    Raises :class:`TraceError` without running the forward if other tape
    hooks are already installed — a sanitizer or profiler changes
    accumulation semantics, and a program traced around them would not
    represent the pristine tape.
    """
    if tape_hooks_active():
        raise TraceError("cannot trace while other tape hooks are installed")
    recorder = _TraceRecorder()
    install_tape_hooks(recorder)
    try:
        loss = forward_fn()
    finally:
        uninstall_tape_hooks(recorder)
    try:
        program = _specialize(loss, recorder.entries, slot_arrays)
    except TraceError as exc:
        return None, loss, str(exc)
    return program, loss, None
