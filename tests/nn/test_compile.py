"""Unit tests for the compiled tape executor (:mod:`repro.nn.compile`).

Traces small hand-built forward functions, then proves the replayed
gradients equal the dynamic tape's under ``np.array_equal`` — the
executor's contract is bit-exactness, so no test here uses a tolerance.
"""

import numpy as np
import pytest

from repro.nn import (
    Embedding,
    Linear,
    Tensor,
    install_tape_hooks,
    no_grad,
    ops,
    uninstall_tape_hooks,
)
from repro.nn.compile import CompiledProgram, SUPPORTED_OPS, TraceError, trace_step
from repro.nn.losses import bce_with_logits, l2_penalty


class _NullHooks:
    def on_make(self, data, parents, backward):
        pass

    def on_accumulate(self, tensor, grad):
        pass


def _grads(parameters):
    return [None if p.grad is None else p.grad.copy() for p in parameters]


def _zero(parameters):
    for p in parameters:
        p.grad = None


class _TinyHead:
    """Embedding -> Linear -> tanh -> logit head over two slot arrays."""

    def __init__(self, seed=0):
        rng = np.random.default_rng(seed)
        self.embedding = Embedding(12, 6, rng=rng)
        self.linear = Linear(6, 6, rng=rng)
        self.parameters = list(self.embedding.parameters()) + list(
            self.linear.parameters()
        )

    def loss(self, rows, labels):
        hidden = self.linear(self.embedding(rows)).tanh()
        logits = (hidden * hidden).sum(axis=1)
        return bce_with_logits(logits, Tensor(labels)) + 1e-3 * l2_penalty(
            self.parameters
        )


def _batch(seed, n=5):
    rng = np.random.default_rng(seed)
    rows = np.asarray(rng.integers(0, 12, size=n), dtype=np.int64)
    labels = np.asarray(rng.integers(0, 2, size=n), dtype=np.float64)
    return rows, labels


class TestTraceStep:
    def test_trace_returns_program_and_live_loss(self):
        head = _TinyHead()
        rows, labels = _batch(1)
        program, loss, failure = trace_step(
            lambda: head.loss(rows, labels), [rows, labels]
        )
        assert failure is None
        assert isinstance(program, CompiledProgram)
        assert program.num_slots == 2
        assert program.num_parameters == len(head.parameters)
        assert program.num_ops > 0
        # The traced loss is still a live tape: backward must work.
        loss.backward()
        assert all(p.grad is not None for p in head.parameters)

    def test_replay_matches_dynamic_bit_for_bit(self):
        head = _TinyHead()
        rows, labels = _batch(1)
        program, loss, _ = trace_step(lambda: head.loss(rows, labels), [rows, labels])
        loss.backward()
        for seed in (2, 3, 4):
            rows, labels = _batch(seed)
            _zero(head.parameters)
            dynamic = head.loss(rows, labels)
            dynamic.backward()
            expected_loss = dynamic.item()
            expected = _grads(head.parameters)
            _zero(head.parameters)
            value = program.replay([rows, labels])
            assert value == expected_loss
            for p, e in zip(head.parameters, expected):
                np.testing.assert_array_equal(p.grad, e)

    def test_replay_survives_parameter_data_replacement(self):
        """load_state_dict swaps Parameter.data arrays; replay must read live."""
        head = _TinyHead()
        rows, labels = _batch(1)
        program, loss, _ = trace_step(lambda: head.loss(rows, labels), [rows, labels])
        loss.backward()
        with no_grad():
            for p in head.parameters:
                p.data = p.data * 1.5  # fresh array object, same shape
        _zero(head.parameters)
        dynamic = head.loss(rows, labels)
        dynamic.backward()
        expected = _grads(head.parameters)
        expected_loss = dynamic.item()
        _zero(head.parameters)
        assert program.replay([rows, labels]) == expected_loss
        for p, e in zip(head.parameters, expected):
            np.testing.assert_array_equal(p.grad, e)

    def test_replays_counter(self):
        head = _TinyHead()
        rows, labels = _batch(1)
        program, loss, _ = trace_step(lambda: head.loss(rows, labels), [rows, labels])
        loss.backward()
        assert program.replays == 0
        program.replay([rows, labels])
        program.replay([rows, labels])
        assert program.replays == 2


class TestFailures:
    def test_unsupported_op_reports_failure(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        cond = np.array([True, False, True, False])

        def forward():
            return ops.where(Tensor(cond), x, -x).sum()

        program, loss, failure = trace_step(forward, [])
        assert program is None
        assert "where" in failure
        loss.backward()  # dynamic fallback still trains
        assert x.grad is not None

    def test_where_and_masked_softmax_outside_compiled_set(self):
        assert "where" not in SUPPORTED_OPS
        assert "masked_softmax" not in SUPPORTED_OPS
        assert "Tensor.__matmul__" in SUPPORTED_OPS

    def test_slot_shape_mismatch_raises(self):
        head = _TinyHead()
        rows, labels = _batch(1)
        program, loss, _ = trace_step(lambda: head.loss(rows, labels), [rows, labels])
        loss.backward()
        bigger_rows, bigger_labels = _batch(2, n=9)
        with pytest.raises(TraceError, match="slot"):
            program.replay([bigger_rows, bigger_labels])

    def test_slot_count_mismatch_raises(self):
        head = _TinyHead()
        rows, labels = _batch(1)
        program, loss, _ = trace_step(lambda: head.loss(rows, labels), [rows, labels])
        loss.backward()
        with pytest.raises(TraceError, match="slot"):
            program.replay([rows])

    def test_parameter_shape_change_raises(self):
        head = _TinyHead()
        rows, labels = _batch(1)
        program, loss, _ = trace_step(lambda: head.loss(rows, labels), [rows, labels])
        loss.backward()
        with no_grad():
            head.parameters[0].data = np.zeros((3, 3))
        with pytest.raises(TraceError, match="parameter shape"):
            program.replay([rows, labels])

    def test_trace_refused_while_hooks_active(self):
        hooks = _NullHooks()
        install_tape_hooks(hooks)
        try:
            with pytest.raises(TraceError, match="hooks"):
                trace_step(lambda: Tensor(np.ones(2), requires_grad=True).sum(), [])
        finally:
            uninstall_tape_hooks(hooks)

    def test_replay_refused_while_hooks_active(self):
        head = _TinyHead()
        rows, labels = _batch(1)
        program, loss, _ = trace_step(lambda: head.loss(rows, labels), [rows, labels])
        loss.backward()
        hooks = _NullHooks()
        install_tape_hooks(hooks)
        try:
            with pytest.raises(TraceError, match="hooks"):
                program.replay([rows, labels])
        finally:
            uninstall_tape_hooks(hooks)

    def test_non_scalar_loss_rejected(self):
        x = Tensor(np.ones(3), requires_grad=True)
        program, loss, failure = trace_step(lambda: x * 2.0, [])
        assert program is None
        assert "scalar" in failure


class TestOpCoverage:
    """One fused forward touching most of the compiled op set, bit-exact."""

    def test_kitchen_sink_graph(self):
        rng = np.random.default_rng(7)
        table = Tensor(rng.normal(size=(10, 4)), requires_grad=True)
        weight = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        parameters = [table, weight]
        idx = np.asarray(rng.integers(0, 10, size=6), dtype=np.int64)
        cols = np.asarray(rng.integers(0, 4, size=(6, 3)), dtype=np.int64)

        def forward():
            gathered = table[idx]
            projected = gathered @ weight
            acts = ops.concat(
                [projected.relu(), projected.tanh(), projected.sigmoid()], axis=1
            )
            pooled = ops.stack([acts.max(axis=1), acts.sum(axis=1)], axis=0)
            scores = ops.row_gather(projected, cols)
            soft = ops.softmax(scores, axis=-1)
            logs = ops.log_softmax(scores, axis=-1)
            mixed = ops.maximum(soft, logs.exp())
            leaky = ops.leaky_relu(projected, 0.1)
            spread = ops.broadcast_to(
                pooled.sum(axis=0).reshape((1, 6)), (2, 6)
            )
            total = (
                pooled.sum()
                + mixed.sum()
                + leaky.abs().sum()
                + spread.sum()
                + (projected**2).sum().log()
                + (projected.clip(-0.5, 0.5) / 2.0).sum()
                + (-projected.transpose()).expand_dims(0).squeeze(0).sum()
                + ops.tile(projected.reshape((6, 4)), (2, 1)).sum()
            )
            return total

        program, loss, failure = trace_step(forward, [idx, cols])
        assert failure is None, failure
        loss.backward()
        rng2 = np.random.default_rng(8)
        idx2 = np.asarray(rng2.integers(0, 10, size=6), dtype=np.int64)
        cols2 = np.asarray(rng2.integers(0, 4, size=(6, 3)), dtype=np.int64)
        _zero(parameters)
        # replay on fresh slots == dynamic on fresh slots
        idx[:], cols[:] = idx2, cols2  # keep array identity irrelevant
        dynamic = forward()
        dynamic.backward()
        expected = _grads(parameters)
        expected_loss = dynamic.item()
        _zero(parameters)
        assert program.replay([idx2, cols2]) == expected_loss
        for p, e in zip(parameters, expected):
            np.testing.assert_array_equal(p.grad, e)
