"""Hot-path benchmark report for the fused training/eval work (PR 4).

Times the canonical PR-4 workload — a mid-size ``movielens_like``
dataset with a 2-layer KGAG — and records per-benchmark medians and
minima plus a :class:`~repro.obs.TapeProfiler` top-op table into a
JSON report (``BENCH_PR4.json`` by default).

The script deliberately restricts itself to the API surface shared by
the pre- and post-optimisation trees (``KGAGTrainer.train_epoch`` /
``.evaluate`` with default constructor flags, ``NeighborSampler``), so
the *same harness* produces both sides of the comparison::

    # baseline, from a worktree of the pre-PR commit:
    PYTHONPATH=/path/to/seed/src python tools/bench_report.py --record before
    # optimised tree:
    make bench-report          # == --record after

Each run merges its side into the existing report; once both sides are
present, ``speedups`` holds the before/after ratios of the per-rep
minima.  Timings are wall-clock and therefore load-sensitive — record
both sides in the same sitting on an otherwise idle machine.

Benchmarks
----------
``train_epoch``
    One full training epoch (forward + backward + SGD over every
    group-item batch).  The fused pair scoring, einsum attention
    contractions, gradient donation, and segment-sum scatter all land
    here.
``validate``
    One full-ranking validation pass (``evaluate`` on the validation
    split, k=5).  The tape-free engine path lands here.
``sampler_build``
    ``NeighborSampler`` table construction (stratified and uniform) —
    the vectorised builder.

PR-8 compiled pair
------------------
``--record compiled-pair`` (default output ``BENCH_PR8.json``) times a
second comparison on the *same* canonical workload: two trainers built
identically except for ``KGAGTrainer(compile=True)``.  Warmup epochs
absorb the trace and the verified first replay, so the timed compiled
epochs are pure replays of the captured program.  The acceptance bar
(``tests/test_bench_smoke.py``) fails if the committed report's
``speedups.train_epoch_compiled`` drops below 1.5x or if any step fell
back to the dynamic tape.

PR-9 worker-scaling curve
-------------------------
``--record parallel`` (default output ``BENCH_PR9.json``) times one
training epoch at each worker count in ``WORKLOAD["parallel"]
["workers"]`` on a sparse, embedding-heavy workload (large entity
table, tiny batches) where the per-step dense Adam update and
full-table L2 dominate.  Every point uses ``compile=True`` so the
curve isolates what ``workers=N`` buys on top of the compiled
executor: N-batch rounds amortise the optimiser step, the sparse
row-payload path replaces dense moment updates, and workers skip the
full-table L2 term (the parent folds it onto touched rows only).  The
report stamps ``cpu_count`` — the committed curve comes from a
single-core container, so the speedup is algorithmic (fewer, sparser
updates), not core-parallelism.  The acceptance bar
(``tests/test_bench_smoke.py``) fails if ``speedups
.train_epoch_workers4`` drops below 1.8x.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

# The fixed workload: large enough for stable medians, small enough to
# keep `make bench-report` under a couple of minutes.
WORKLOAD = {
    "dataset": {"num_users": 120, "num_items": 160, "num_groups": 40, "seed": 7},
    "model": {"embedding_dim": 32, "num_layers": 2, "num_neighbors": 4, "seed": 7},
    "split_rng_seed": 7,
    "warmup_epochs": 2,
    "train_epoch_reps": 11,
    "validate_reps": 7,
    "sampler_reps": 5,
    "evaluate_k": 5,
    "compiled_pair_reps": 9,
    # The PR-9 worker-scaling workload: a large entity table with tiny
    # batches, where dense optimiser/regulariser work per step dwarfs
    # the forward/backward and the sparse parallel path pays off.
    "parallel": {
        "dataset": {
            "num_users": 100,
            "num_items": 24000,
            "num_groups": 2,
            "observed_interaction_fraction": 0.005,
            "seed": 7,
        },
        "model": {
            "embedding_dim": 96,
            "num_layers": 2,
            "num_neighbors": 4,
            "batch_size": 8,
            "seed": 7,
        },
        "split_rng_seed": 7,
        "workers": [1, 2, 4, 8],
        "warmup_epochs": 1,
        "reps": 3,
    },
}


def _build_world(**trainer_flags):
    from repro.core import KGAG, KGAGConfig, KGAGTrainer
    from repro.data import MovieLensLikeConfig, movielens_like, split_interactions

    spec = WORKLOAD["dataset"]
    dataset = movielens_like("rand", MovieLensLikeConfig(**spec))
    split = split_interactions(
        dataset.group_item, rng=np.random.default_rng(WORKLOAD["split_rng_seed"])
    )
    config = KGAGConfig(**WORKLOAD["model"])
    model = KGAG(
        dataset.kg,
        dataset.num_users,
        dataset.num_items,
        dataset.user_item.pairs,
        dataset.groups,
        config,
    )
    trainer = KGAGTrainer(
        model,
        split.train,
        dataset.user_item,
        group_validation=split.validation,
        **trainer_flags,
    )
    return dataset, split, trainer


def _time_reps(fn, reps: int) -> dict:
    """Median and minimum wall-clock over ``reps`` calls.

    The median describes the typical run; the minimum is the standard
    least-interference estimate (cf. ``timeit``) and is what
    ``speedups`` compares, since scheduler noise only ever adds time.
    """
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "median_s": statistics.median(samples),
        "min_s": min(samples),
        "reps": reps,
    }


def _profile_epoch(trainer, top: int = 12) -> list[dict]:
    """One extra profiled epoch (never part of the timed reps)."""
    try:
        from repro.obs import TapeProfiler
    except ImportError:  # pragma: no cover - seed trees always have obs
        return []
    with TapeProfiler() as profile:
        trainer.train_epoch()
    total = profile.attributed_seconds or 1.0
    return [
        {
            "op": op.name,
            "calls": op.forward_calls + op.backward_calls,
            "total_ms": round(op.total_seconds * 1e3, 3),
            "share": round(op.total_seconds / total, 4),
        }
        for op in profile.top(top)
    ]


def _sampler_build_seconds(dataset, stratify: bool) -> float:
    from repro.kg import NeighborSampler

    k = WORKLOAD["model"]["num_neighbors"]

    def build():
        NeighborSampler(
            dataset.kg,
            num_neighbors=k,
            rng=np.random.default_rng(0),
            stratify_by_relation=stratify,
        )

    return _time_reps(build, WORKLOAD["sampler_reps"])


def measure() -> dict:
    dataset, split, trainer = _build_world()
    for _ in range(WORKLOAD["warmup_epochs"]):
        trainer.train_epoch()

    k = WORKLOAD["evaluate_k"]
    result = {
        "commit": _git_commit(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "train_epoch": _time_reps(trainer.train_epoch, WORKLOAD["train_epoch_reps"]),
        "validate": _time_reps(
            lambda: trainer.evaluate(split.validation, k=k),
            WORKLOAD["validate_reps"],
        ),
        "sampler_stratified": _sampler_build_seconds(dataset, True),
        "sampler_uniform": _sampler_build_seconds(dataset, False),
        "top_ops": _profile_epoch(trainer),
    }
    return result


def measure_compiled_pair() -> dict:
    """Time the compiled-vs-dynamic train-step pair (PR 8).

    Both sides run ``KGAGTrainer.train_epoch`` on the canonical
    workload; the trainers are constructed identically except for
    ``compile=True``, so the ratio isolates exactly what that flag buys
    (trace-once/replay-many tape execution, including the per-step plan
    build both sides share).  Warmup epochs absorb the one-time trace
    and the bit-exactness-verified first replay; every timed compiled
    epoch is a pure replay — confirmed by requiring zero recorded
    fallbacks.
    """
    reps = WORKLOAD["compiled_pair_reps"]
    measured: dict = {
        "commit": _git_commit(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    for side, flags in (("dynamic", {}), ("compiled", {"compile": True})):
        _, _, trainer = _build_world(**flags)
        for _ in range(WORKLOAD["warmup_epochs"]):
            trainer.train_epoch()
        measured[f"train_epoch_{side}"] = _time_reps(trainer.train_epoch, reps)
        if flags:
            measured["compile_stats"] = dict(trainer.compile_stats)
            programs = [
                program
                for program in trainer._programs.values()
                if getattr(program, "num_ops", None)
            ]
            measured["programs"] = [
                {
                    "num_ops": program.num_ops,
                    "arena_bytes": program.arena_nbytes,
                    "requested_bytes": program.requested_nbytes,
                }
                for program in programs
            ]
    return measured


def _build_parallel_world(workers: int):
    from repro.core import KGAG, KGAGConfig, KGAGTrainer
    from repro.data import MovieLensLikeConfig, movielens_like, split_interactions

    spec = WORKLOAD["parallel"]
    dataset = movielens_like("rand", MovieLensLikeConfig(**spec["dataset"]))
    split = split_interactions(
        dataset.group_item, rng=np.random.default_rng(spec["split_rng_seed"])
    )
    config = KGAGConfig(**spec["model"])
    model = KGAG(
        dataset.kg,
        dataset.num_users,
        dataset.num_items,
        dataset.user_item.pairs,
        dataset.groups,
        config,
    )
    return KGAGTrainer(
        model,
        split.train,
        dataset.user_item,
        group_validation=split.validation,
        workers=workers,
        compile=True,
    )


def measure_parallel() -> dict:
    """Time one training epoch at each worker count (PR 9).

    Every point runs ``KGAGTrainer(workers=w, compile=True)`` on the
    ``WORKLOAD["parallel"]`` world, freshly built per point so no state
    leaks between worker counts.  ``cpu_count`` is stamped because the
    curve's meaning depends on it: on a single core the speedup is
    purely algorithmic (rounds amortise the optimiser step, sparse row
    payloads replace dense Adam moment sweeps, workers skip the
    full-table L2 term).
    """
    spec = WORKLOAD["parallel"]
    measured: dict = {
        "commit": _git_commit(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "train_epoch_workers": {},
    }
    for workers in spec["workers"]:
        trainer = _build_parallel_world(workers)
        try:
            for _ in range(spec["warmup_epochs"]):
                trainer.train_epoch()
            timed = _time_reps(trainer.train_epoch, spec["reps"])
        finally:
            trainer.close()
        measured["train_epoch_workers"][str(workers)] = timed
        print(
            f"[parallel] workers={workers}  train_epoch "
            f"{timed['min_s']:.4f}s (min of {timed['reps']})"
        )
    return measured


def _merge_parallel(report: dict, measured: dict) -> dict:
    report.setdefault("workload", WORKLOAD)
    report["parallel"] = measured
    curve = measured["train_epoch_workers"]
    base = curve["1"]["min_s"]
    speedups = report.setdefault("speedups", {})
    for workers, timed in curve.items():
        if workers != "1":
            speedups[f"train_epoch_workers{workers}"] = round(
                base / timed["min_s"], 3
            )
    return report


def _merge_pair(report: dict, measured: dict) -> dict:
    report.setdefault("workload", WORKLOAD)
    report["pair"] = measured
    dynamic = measured["train_epoch_dynamic"]["min_s"]
    compiled = measured["train_epoch_compiled"]["min_s"]
    report.setdefault("speedups", {})["train_epoch_compiled"] = round(
        dynamic / compiled, 3
    )
    return report


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


_RATIO_KEYS = (
    "train_epoch",
    "validate",
    "sampler_stratified",
    "sampler_uniform",
)


def _merge(report: dict, side: str, measured: dict) -> dict:
    report.setdefault("workload", WORKLOAD)
    report[side] = measured
    before, after = report.get("before"), report.get("after")
    if before and after:
        report["speedups"] = {
            key: round(before[key]["min_s"] / after[key]["min_s"], 3)
            for key in _RATIO_KEYS
            if before.get(key, {}).get("min_s") and after.get(key, {}).get("min_s")
        }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record",
        choices=("before", "after", "compiled-pair", "parallel"),
        default="after",
        help="which comparison this run measures: a before/after side of "
        "the PR-4 report, the PR-8 compiled-vs-dynamic pair, or the PR-9 "
        "worker-scaling curve",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="report file to merge into (default: BENCH_PR4.json for "
        "before/after, BENCH_PR8.json for compiled-pair, BENCH_PR9.json "
        "for parallel)",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        name = {
            "compiled-pair": "BENCH_PR8.json",
            "parallel": "BENCH_PR9.json",
        }.get(args.record, "BENCH_PR4.json")
        args.output = REPO_ROOT / name

    report = {}
    if args.output.exists():
        report = json.loads(args.output.read_text())
    if args.record == "parallel":
        measured = measure_parallel()
        report = _merge_parallel(report, measured)
        print(f"[parallel] curve recorded -> {args.output}")
    elif args.record == "compiled-pair":
        measured = measure_compiled_pair()
        report = _merge_pair(report, measured)
        print(
            f"[compiled-pair] train_epoch dynamic "
            f"{measured['train_epoch_dynamic']['min_s']:.4f}s  compiled "
            f"{measured['train_epoch_compiled']['min_s']:.4f}s (min)  "
            f"-> {args.output}"
        )
    else:
        measured = measure()
        report = _merge(report, args.record, measured)
        print(
            f"[{args.record}] train_epoch {measured['train_epoch']['min_s']:.4f}s  "
            f"validate {measured['validate']['min_s']:.4f}s (min)  -> {args.output}"
        )
    args.output.write_text(json.dumps(report, indent=1) + "\n")

    for key, ratio in report.get("speedups", {}).items():
        print(f"  speedup {key}: {ratio:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
