"""Non-timing smoke test for the PR-4 benchmark report harness.

Runs :mod:`tools.bench_report`'s measurement machinery on a shrunken
workload so tier-1 catches breakage in the benchmarked code paths (and
in the report script itself) without paying for stable medians.  The
real timings come from ``make bench-report``.
"""

import importlib.util
import json
import math
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def bench_report():
    spec = importlib.util.spec_from_file_location(
        "bench_report", REPO_ROOT / "tools" / "bench_report.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_TINY_WORKLOAD = dict(
    dataset={"num_users": 30, "num_items": 40, "num_groups": 12, "seed": 7},
    model={"embedding_dim": 8, "num_layers": 1, "num_neighbors": 3, "seed": 7},
    warmup_epochs=0,
    train_epoch_reps=1,
    validate_reps=1,
    sampler_reps=1,
    compiled_pair_reps=1,
)


@pytest.fixture(scope="module")
def tiny_measurement(bench_report):
    original = dict(bench_report.WORKLOAD)
    bench_report.WORKLOAD.update(_TINY_WORKLOAD)
    try:
        yield bench_report.measure()
    finally:
        bench_report.WORKLOAD.clear()
        bench_report.WORKLOAD.update(original)


_TINY_PARALLEL = {
    "dataset": {
        "num_users": 30,
        "num_items": 40,
        "num_groups": 12,
        "observed_interaction_fraction": 0.2,
        "seed": 7,
    },
    "model": {
        "embedding_dim": 8,
        "num_layers": 1,
        "num_neighbors": 3,
        "batch_size": 16,
        "seed": 7,
    },
    "split_rng_seed": 7,
    "workers": [1, 2],
    # One warmup epoch so every point's compiled executor traces before
    # the timed rep.
    "warmup_epochs": 1,
    "reps": 1,
}


@pytest.fixture(scope="module")
def tiny_parallel(bench_report):
    original = bench_report.WORKLOAD["parallel"]
    bench_report.WORKLOAD["parallel"] = _TINY_PARALLEL
    try:
        yield bench_report.measure_parallel()
    finally:
        bench_report.WORKLOAD["parallel"] = original


@pytest.fixture(scope="module")
def tiny_pair(bench_report):
    original = dict(bench_report.WORKLOAD)
    # One warmup epoch so the compiled side traces (and verifies its
    # first replay) before the timed rep — the smoke then proves a real
    # replay executes end to end, not just the trace.
    bench_report.WORKLOAD.update(_TINY_WORKLOAD, warmup_epochs=2)
    try:
        yield bench_report.measure_compiled_pair()
    finally:
        bench_report.WORKLOAD.clear()
        bench_report.WORKLOAD.update(original)


class TestMeasure:
    def test_records_every_benchmark(self, tiny_measurement):
        for key in (
            "train_epoch",
            "validate",
            "sampler_stratified",
            "sampler_uniform",
        ):
            timing = tiny_measurement[key]
            assert math.isfinite(timing["min_s"]) and timing["min_s"] > 0.0, key
            assert timing["min_s"] <= timing["median_s"], key

    def test_profiler_table_attributes_hot_ops(self, tiny_measurement):
        ops = {row["op"] for row in tiny_measurement["top_ops"]}
        assert ops, "profiled epoch recorded no tape ops"
        shares = [row["share"] for row in tiny_measurement["top_ops"]]
        assert all(0.0 <= share <= 1.0 for share in shares)
        assert shares == sorted(shares, reverse=True)

    def test_environment_stamp(self, tiny_measurement):
        assert tiny_measurement["numpy"]
        assert tiny_measurement["python"]


class TestCompiledPair:
    def test_records_both_sides(self, tiny_pair):
        for key in ("train_epoch_dynamic", "train_epoch_compiled"):
            timing = tiny_pair[key]
            assert math.isfinite(timing["min_s"]) and timing["min_s"] > 0.0, key
            assert timing["min_s"] <= timing["median_s"], key

    def test_compiled_side_replayed_without_fallback(self, tiny_pair):
        stats = tiny_pair["compile_stats"]
        assert stats["traces"] >= 1
        assert stats["replays"] >= 1
        assert stats["fallbacks"] == 0

    def test_program_metadata_recorded(self, tiny_pair):
        programs = tiny_pair["programs"]
        assert programs, "no compiled program captured"
        for program in programs:
            assert program["num_ops"] > 0
            assert 0 < program["arena_bytes"] <= program["requested_bytes"]

    def test_merge_pair_computes_speedup(self, bench_report):
        report = bench_report._merge_pair(
            {},
            {
                "train_epoch_dynamic": {"min_s": 0.3},
                "train_epoch_compiled": {"min_s": 0.2},
            },
        )
        assert report["speedups"]["train_epoch_compiled"] == pytest.approx(1.5)
        assert report["pair"]["train_epoch_dynamic"]["min_s"] == 0.3


class TestParallelCurve:
    def test_records_every_worker_point(self, tiny_parallel):
        curve = tiny_parallel["train_epoch_workers"]
        assert sorted(curve) == ["1", "2"]
        for workers, timing in curve.items():
            assert math.isfinite(timing["min_s"]) and timing["min_s"] > 0.0, workers
            assert timing["min_s"] <= timing["median_s"], workers

    def test_stamps_cpu_count(self, tiny_parallel):
        assert tiny_parallel["cpu_count"] >= 1

    def test_merge_parallel_computes_speedups_vs_one_worker(self, bench_report):
        report = bench_report._merge_parallel(
            {},
            {
                "train_epoch_workers": {
                    "1": {"min_s": 1.0},
                    "2": {"min_s": 0.5},
                    "4": {"min_s": 0.4},
                }
            },
        )
        speedups = report["speedups"]
        assert speedups["train_epoch_workers2"] == pytest.approx(2.0)
        assert speedups["train_epoch_workers4"] == pytest.approx(2.5)
        assert "train_epoch_workers1" not in speedups


class TestMerge:
    def test_speedups_need_both_sides(self, bench_report):
        report = bench_report._merge({}, "after", {"train_epoch": {"min_s": 1.0}})
        assert "speedups" not in report

    def test_speedups_are_before_over_after(self, bench_report):
        report = {}
        bench_report._merge(
            report,
            "before",
            {"train_epoch": {"min_s": 0.5}, "validate": {"min_s": 0.7}},
        )
        bench_report._merge(
            report,
            "after",
            {"train_epoch": {"min_s": 0.25}, "validate": {"min_s": 0.1}},
        )
        assert report["speedups"]["train_epoch"] == pytest.approx(2.0)
        assert report["speedups"]["validate"] == pytest.approx(7.0)

    def test_merge_round_trips_through_json(self, bench_report, tiny_measurement):
        report = bench_report._merge({}, "after", tiny_measurement)
        assert json.loads(json.dumps(report))["after"] == tiny_measurement


def test_committed_report_clears_acceptance_bars():
    """The committed BENCH_PR4.json must demonstrate the PR-4 targets:
    >=2x train-epoch and >=5x validation speedup, with both sides
    measured by the same harness."""
    path = REPO_ROOT / "BENCH_PR4.json"
    report = json.loads(path.read_text())
    assert {"before", "after", "speedups"} <= set(report)
    assert report["speedups"]["train_epoch"] >= 2.0
    assert report["speedups"]["validate"] >= 5.0
    assert report["after"]["top_ops"], "profiler top-op table missing"


def test_committed_pr8_report_clears_acceptance_bar():
    """The committed BENCH_PR8.json must demonstrate the PR-8 target:
    compiled replay >=1.5x the dynamic tape on the canonical workload
    (two trainers identical except ``compile=True``), with every timed
    compiled step a pure replay (zero fallbacks)."""
    path = REPO_ROOT / "BENCH_PR8.json"
    report = json.loads(path.read_text())
    assert {"workload", "pair", "speedups"} <= set(report)
    assert report["speedups"]["train_epoch_compiled"] >= 1.5
    pair = report["pair"]
    assert pair["compile_stats"]["fallbacks"] == 0
    assert pair["compile_stats"]["replays"] >= 1
    assert pair["programs"], "compiled program metadata missing"


def test_committed_pr9_report_clears_acceptance_bar():
    """The committed BENCH_PR9.json must demonstrate the PR-9 target:
    >=1.8x train-epoch speedup at ``workers=4`` over the 1-worker path
    on the worker-scaling workload (every point ``compile=True``), with
    the full 1/2/4/8 curve and the machine's core count recorded."""
    path = REPO_ROOT / "BENCH_PR9.json"
    report = json.loads(path.read_text())
    assert {"workload", "parallel", "speedups"} <= set(report)
    assert report["speedups"]["train_epoch_workers4"] >= 1.8
    curve = report["parallel"]["train_epoch_workers"]
    assert sorted(curve, key=int) == ["1", "2", "4", "8"]
    assert report["parallel"]["cpu_count"] >= 1


def test_committed_serve_report_clears_acceptance_bar():
    """The committed BENCH_SERVE.json must demonstrate the serving-pool
    target: >=2x sustained QPS at ``workers=4`` over the single-process
    server on the canonical closed-loop workload, with client-side
    p50/p95/p99 from repro.obs histograms and the fleet-side cross-check
    recorded for every point."""
    path = REPO_ROOT / "BENCH_SERVE.json"
    report = json.loads(path.read_text())
    assert {"workload", "environment", "load", "speedups"} <= set(report)
    assert report["speedups"]["workers4"] >= 2.0
    assert sorted(report["load"], key=int) == ["1", "2", "4"]
    for workers, point in report["load"].items():
        assert point["qps"] > 0, workers
        assert set(point["latency_ms"]) == {"p50", "p95", "p99"}, workers
        assert set(point["server_latency_ms"]) == {"p50", "p95", "p99"}, workers
        assert point["errors"] == 0, workers
        assert point["server_requests"] >= point["served"], workers
    assert report["environment"]["cpu_count"] >= 1
    assert report["workload"]["admission"]["max_inflight"] >= 1
