"""Online ingestion: delta feeds, warm-start fine-tuning, index hot-swap.

The offline pipeline trains on a frozen snapshot; this package closes
the loop for a *running* deployment:

* :mod:`~repro.stream.delta` — the :class:`DeltaBatch` JSONL schema and
  ``apply_delta``, growing a dataset with stable id remapping recorded
  in a :class:`GrowthPlan`;
* :mod:`~repro.stream.grow` — ``grow_state``, moving a
  :class:`~repro.core.checkpoint.TrainState` to the grown vocabulary
  (old rows and Adam moments bit-exact, new rows from seeded streams or
  neighbor means) plus ``warm_start``/``finetune``;
* :mod:`~repro.stream.updater` — the :class:`OnlineUpdater` driver and
  :class:`DeltaFeedWatcher`, turning a feed directory into fine-tuned,
  atomically hot-swapped serving indexes with delta-lag / fine-tune /
  swap-latency observability.

``python -m repro.stream.smoke`` (``make stream-smoke``) exercises the
whole loop: a cold item arrives by delta and is served to a brand-new
group without restarting the server.
"""

from .delta import (
    DeltaBatch,
    DeltaError,
    GrowthPlan,
    apply_delta,
    read_delta_jsonl,
    write_delta_jsonl,
)
from .grow import finetune, grow_state, parameter_order, warm_start
from .updater import DeltaFeedWatcher, OnlineUpdater

__all__ = [
    "DeltaBatch",
    "DeltaError",
    "GrowthPlan",
    "apply_delta",
    "read_delta_jsonl",
    "write_delta_jsonl",
    "grow_state",
    "parameter_order",
    "warm_start",
    "finetune",
    "OnlineUpdater",
    "DeltaFeedWatcher",
]
