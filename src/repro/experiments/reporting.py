"""Plain-text reporting: paper-style tables and ASCII sweep charts.

Every experiment harness prints its result in the same row/column layout
as the corresponding paper table or figure, so EXPERIMENTS.md can be
updated by copy-paste.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_sweep", "format_attention_bars"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render a monospace table; floats formatted to 4 decimals like the paper."""
    rendered_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows)) if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_sweep(
    parameter: str,
    values: Sequence,
    metrics: Mapping[str, Sequence[float]],
    title: str | None = None,
    width: int = 40,
) -> str:
    """Render a sweep as aligned rows plus an ASCII bar per metric value.

    Mirrors the paper's figures: one line per parameter value per metric,
    bar length proportional to the metric.
    """
    lines = []
    if title:
        lines.append(title)
    for metric_name, series in metrics.items():
        lines.append(f"  {metric_name}:")
        top = max(series) if series else 1.0
        for value, measurement in zip(values, series):
            bar = "#" * int(round(width * (measurement / top))) if top > 0 else ""
            marker = "  <- best" if measurement == top else ""
            lines.append(
                f"    {parameter}={value!s:<6} {measurement:.4f} |{bar}{marker}"
            )
    return "\n".join(lines)


def format_attention_bars(
    members: Sequence[int],
    attention: Sequence[float],
    sp: Sequence[float],
    pi: Sequence[float],
    width: int = 40,
) -> str:
    """Render the Fig. 6 case study: one attention bar per group member."""
    lines = ["member        attention  SP       PI       "]
    lines.append("-" * len(lines[0]))
    top = max(attention) if len(attention) else 1.0
    for user, weight, sp_value, pi_value in zip(members, attention, sp, pi):
        bar = "#" * int(round(width * (weight / top))) if top > 0 else ""
        lines.append(
            f"user {user:<7d} {weight:.4f}    {sp_value:+.3f}   {pi_value:+.3f}   |{bar}"
        )
    return "\n".join(lines)
