"""Benchmark: regenerate Figure 6 (attention-as-explanation case study, RQ4).

Shape assertions: the attention weights form a distribution, and the
mass concentrates on a strict subset of members ("a few people influence
group decision making and others just follow") — the top-2 members carry
more than a uniform share.
"""

import numpy as np

from repro.experiments import fig6_case_study

from conftest import run_once


def test_fig6_case_study(benchmark, profile):
    case = run_once(benchmark, fig6_case_study.run, profile)
    rendered = fig6_case_study.render(case)
    benchmark.extra_info["case_study"] = rendered
    print()
    print(rendered)

    attention = np.asarray(case.attention)
    assert attention.shape == (len(case.members),)
    np.testing.assert_allclose(attention.sum(), 1.0, atol=1e-9)
    assert (attention >= 0).all()

    # Concentration: the two most influential members exceed the uniform
    # 2/S share (the paper's "few influence, others follow" phenomenon).
    size = len(case.members)
    top_two = np.sort(attention)[-2:].sum()
    assert top_two >= 2.0 / size, (
        f"attention should concentrate: top-2 mass {top_two:.3f} vs uniform {2 / size:.3f}"
    )
    assert 0.0 <= case.probability <= 1.0
