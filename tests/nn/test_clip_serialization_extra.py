"""Tests for gradient clipping and misc optimizer utilities."""

import numpy as np
import pytest

from repro.nn import Parameter, clip_grad_norm


class TestClipGradNorm:
    def test_returns_preclip_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.array([3.0, 4.0, 0.0, 0.0])
        norm = clip_grad_norm([p], max_norm=100.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(p.grad, [3.0, 4.0, 0.0, 0.0])  # untouched

    def test_clips_when_exceeding(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)
        # Direction preserved.
        np.testing.assert_allclose(p.grad / np.linalg.norm(p.grad), [0.6, 0.8])

    def test_global_norm_across_parameters(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        norm = clip_grad_norm([a, b], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0)

    def test_skips_parameters_without_grad(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.grad = np.array([2.0])
        clip_grad_norm([a, b], max_norm=1.0)
        assert b.grad is None

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)

    def test_zero_gradients_untouched(self):
        p = Parameter(np.zeros(3))
        p.grad = np.zeros(3)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == 0.0
        np.testing.assert_allclose(p.grad, 0.0)

    def test_scales_in_place_preserving_buffer_identity(self):
        # Regression: rebinding parameter.grad defeated the donated
        # gradient buffers of the fused training path.
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])
        buffer = p.grad
        clip_grad_norm([p], max_norm=1.0)
        assert p.grad is buffer
        np.testing.assert_allclose(buffer, [0.6, 0.8])

    def test_norm_matches_shared_helper(self):
        from repro.nn import grad_l2_norm

        params = []
        rng = np.random.default_rng(5)
        for shape in [(3, 2), (4,), (2, 2, 2)]:
            p = Parameter(np.zeros(shape))
            p.grad = rng.normal(size=shape)
            params.append(p)
        assert clip_grad_norm(params, max_norm=1e9) == grad_l2_norm(params)
