"""Knowledge graph triple store.

The paper represents a knowledge graph as a set of (head, relation, tail)
triples over integer-identified entities and relations (Sec. III-A).
:class:`KnowledgeGraph` stores the triples in numpy arrays and maintains an
adjacency index for the GCN propagation code.

Following KGCN/KGAT practice, the graph is treated as *bidirectional* for
message passing: for every stored triple ``(h, r, t)`` the adjacency also
contains the reverse edge ``t --r--> h`` (with the same relation id), so
information can flow both ways along a fact.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

__all__ = ["Triple", "KnowledgeGraph"]


@dataclass(frozen=True)
class Triple:
    """One (head, relation, tail) fact."""

    head: int
    relation: int
    tail: int

    def reversed(self) -> "Triple":
        """The same fact read in the opposite direction."""
        return Triple(self.tail, self.relation, self.head)


class KnowledgeGraph:
    """Immutable triple store with an adjacency index.

    Parameters
    ----------
    num_entities:
        Size of the entity vocabulary; entity ids are ``[0, num_entities)``.
    num_relations:
        Size of the relation vocabulary; relation ids are
        ``[0, num_relations)``.
    triples:
        Iterable of ``(head, relation, tail)`` tuples (or :class:`Triple`).
    entity_names / relation_names:
        Optional human-readable labels used by explanations and examples.
    bidirectional:
        If True (default) the adjacency index includes reverse edges.
        The stored triple list is unaffected.

    Examples
    --------
    >>> kg = KnowledgeGraph(3, 1, [(0, 0, 1), (1, 0, 2)])
    >>> sorted(t for _, t in kg.neighbors(1))
    [0, 2]
    """

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        triples: Iterable[tuple[int, int, int] | Triple],
        entity_names: Mapping[int, str] | None = None,
        relation_names: Mapping[int, str] | None = None,
        bidirectional: bool = True,
    ):
        if num_entities <= 0:
            raise ValueError("num_entities must be positive")
        if num_relations <= 0:
            raise ValueError("num_relations must be positive")
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)
        self.bidirectional = bool(bidirectional)
        self.entity_names = dict(entity_names or {})
        self.relation_names = dict(relation_names or {})

        rows = []
        for triple in triples:
            if isinstance(triple, Triple):
                head, relation, tail = triple.head, triple.relation, triple.tail
            else:
                head, relation, tail = triple
            rows.append((int(head), int(relation), int(tail)))
        if rows:
            array = np.array(rows, dtype=np.int64)
        else:
            array = np.zeros((0, 3), dtype=np.int64)
        self._validate(array)
        # Deduplicate to keep adjacency weights unbiased.
        self._triples = np.unique(array, axis=0) if len(array) else array

        adjacency: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for head, relation, tail in self._triples:
            adjacency[int(head)].append((int(relation), int(tail)))
            if self.bidirectional and head != tail:
                adjacency[int(tail)].append((int(relation), int(head)))
        self._adjacency = {k: tuple(v) for k, v in adjacency.items()}

    def _validate(self, array: np.ndarray) -> None:
        if len(array) == 0:
            return
        heads, relations, tails = array[:, 0], array[:, 1], array[:, 2]
        if heads.min() < 0 or heads.max() >= self.num_entities:
            raise ValueError("triple head out of entity range")
        if tails.min() < 0 or tails.max() >= self.num_entities:
            raise ValueError("triple tail out of entity range")
        if relations.min() < 0 or relations.max() >= self.num_relations:
            raise ValueError("triple relation out of relation range")

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def triples(self) -> np.ndarray:
        """``(num_triples, 3)`` int array of unique stored triples."""
        return self._triples

    @property
    def num_triples(self) -> int:
        return len(self._triples)

    def __len__(self) -> int:
        return self.num_triples

    def __iter__(self) -> Iterator[Triple]:
        for head, relation, tail in self._triples:
            yield Triple(int(head), int(relation), int(tail))

    def __contains__(self, triple) -> bool:
        if isinstance(triple, Triple):
            key = (triple.head, triple.relation, triple.tail)
        else:
            key = tuple(int(x) for x in triple)
        if self.num_triples == 0:
            return False
        matches = (self._triples == np.array(key, dtype=np.int64)).all(axis=1)
        return bool(matches.any())

    def neighbors(self, entity: int) -> tuple[tuple[int, int], ...]:
        """All ``(relation, neighbor)`` pairs of ``entity`` (N_e in Eq. 1)."""
        return self._adjacency.get(int(entity), ())

    def degree(self, entity: int) -> int:
        """Number of adjacency edges incident to ``entity``."""
        return len(self.neighbors(entity))

    def degrees(self) -> np.ndarray:
        """Degree of every entity, shape ``(num_entities,)``."""
        out = np.zeros(self.num_entities, dtype=np.int64)
        for entity, edges in self._adjacency.items():
            out[entity] = len(edges)
        return out

    def entity_name(self, entity: int) -> str:
        """Readable label for ``entity`` (falls back to ``entity:<id>``)."""
        return self.entity_names.get(int(entity), f"entity:{int(entity)}")

    def relation_name(self, relation: int) -> str:
        """Readable label for ``relation`` (falls back to ``relation:<id>``)."""
        return self.relation_names.get(int(relation), f"relation:{int(relation)}")

    # ------------------------------------------------------------------
    # analysis helpers (used by generators, experiments and tests)
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` with relation edge labels."""
        import networkx as nx

        graph = nx.MultiDiGraph()
        graph.add_nodes_from(range(self.num_entities))
        for head, relation, tail in self._triples:
            graph.add_edge(int(head), int(tail), relation=int(relation))
        return graph

    def bfs_distances(self, source: int, max_hops: int | None = None) -> dict[int, int]:
        """Hop distance from ``source`` to every reachable entity.

        Uses the (possibly bidirectional) adjacency index — i.e. the same
        connectivity the GCN propagation sees.
        """
        distances = {int(source): 0}
        frontier = [int(source)]
        hops = 0
        while frontier and (max_hops is None or hops < max_hops):
            hops += 1
            next_frontier = []
            for entity in frontier:
                for _, neighbor in self.neighbors(entity):
                    if neighbor not in distances:
                        distances[neighbor] = hops
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return distances

    def connected_within(self, a: int, b: int, max_hops: int) -> bool:
        """Whether ``b`` is reachable from ``a`` in at most ``max_hops`` steps."""
        return int(b) in self.bfs_distances(a, max_hops=max_hops)

    def relation_histogram(self) -> np.ndarray:
        """Triple count per relation id."""
        counts = np.zeros(self.num_relations, dtype=np.int64)
        if self.num_triples:
            uniq, freq = np.unique(self._triples[:, 1], return_counts=True)
            counts[uniq] = freq
        return counts

    def describe(self) -> dict[str, float]:
        """Summary statistics (used by the Table I harness)."""
        degrees = self.degrees()
        return {
            "num_entities": self.num_entities,
            "num_relations": self.num_relations,
            "num_triples": self.num_triples,
            "mean_degree": float(degrees.mean()) if self.num_entities else 0.0,
            "max_degree": int(degrees.max()) if self.num_entities else 0,
            "isolated_entities": int((degrees == 0).sum()),
        }

    def grown(
        self,
        num_new_entities: int = 0,
        num_new_relations: int = 0,
        new_triples=(),
        entity_remap: np.ndarray | None = None,
        entity_names: Mapping[int, str] | None = None,
        relation_names: Mapping[int, str] | None = None,
    ) -> "KnowledgeGraph":
        """Vocabulary-growing copy: remap old ids, append new facts.

        The incremental-ingestion path (:mod:`repro.stream`) needs to add
        entities *inside* the existing id layout — new items must slot in
        before the attribute block so the item == entity-id convention
        survives — which renumbers every old entity.  ``entity_remap``
        carries that renumbering: ``entity_remap[old_id] == new_id`` (it
        must be injective and land inside the grown vocabulary; identity
        append when omitted).  Relations are append-only: old relation
        ids never move.

        Parameters
        ----------
        num_new_entities / num_new_relations:
            Vocabulary growth (non-negative).
        new_triples:
            ``(n, 3)`` facts already expressed in the *new* numbering.
        entity_remap:
            Old-entity-id -> new-entity-id array of length
            ``self.num_entities``.
        entity_names / relation_names:
            Labels for new ids (old labels are carried over, entity
            labels through the remap).
        """
        if num_new_entities < 0 or num_new_relations < 0:
            raise ValueError("vocabulary growth must be non-negative")
        new_num_entities = self.num_entities + int(num_new_entities)
        new_num_relations = self.num_relations + int(num_new_relations)
        if entity_remap is None:
            remap = np.arange(self.num_entities, dtype=np.int64)
        else:
            remap = np.asarray(entity_remap, dtype=np.int64)
            if remap.shape != (self.num_entities,):
                raise ValueError(
                    f"entity_remap must have shape ({self.num_entities},), "
                    f"got {remap.shape}"
                )
            if len(remap) and (remap.min() < 0 or remap.max() >= new_num_entities):
                raise ValueError("entity_remap target out of the grown range")
            if len(np.unique(remap)) != len(remap):
                raise ValueError("entity_remap must be injective")
        remapped = self._triples.copy()
        if len(remapped):
            remapped[:, 0] = remap[remapped[:, 0]]
            remapped[:, 2] = remap[remapped[:, 2]]
        appended = np.asarray(new_triples, dtype=np.int64)
        if appended.size == 0:
            appended = np.zeros((0, 3), dtype=np.int64)
        if appended.ndim != 2 or appended.shape[1] != 3:
            raise ValueError("new_triples must have shape (n, 3)")
        combined = np.concatenate([remapped, appended], axis=0)
        names = {int(remap[old]): label for old, label in self.entity_names.items()}
        names.update({int(k): v for k, v in (entity_names or {}).items()})
        rel_names = dict(self.relation_names)
        rel_names.update({int(k): v for k, v in (relation_names or {}).items()})
        return KnowledgeGraph(
            new_num_entities,
            new_num_relations,
            combined,
            entity_names=names,
            relation_names=rel_names,
            bidirectional=self.bidirectional,
        )

    def merge(self, other: "KnowledgeGraph") -> "KnowledgeGraph":
        """Union of two graphs over the same vocabularies."""
        if (self.num_entities, self.num_relations) != (
            other.num_entities,
            other.num_relations,
        ):
            raise ValueError("cannot merge graphs with different vocabularies")
        combined = np.concatenate([self._triples, other._triples], axis=0)
        names = {**other.entity_names, **self.entity_names}
        rel_names = {**other.relation_names, **self.relation_names}
        return KnowledgeGraph(
            self.num_entities,
            self.num_relations,
            combined,
            entity_names=names,
            relation_names=rel_names,
            bidirectional=self.bidirectional,
        )
