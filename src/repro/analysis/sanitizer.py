"""Runtime tape sanitizer: pinpoint numerical anomalies at the op level.

The autograd tape in :mod:`repro.nn.tensor` funnels every op through two
choke points: ``Tensor._make`` (node creation on the forward pass) and
``Tensor._accumulate`` (gradient accumulation on the backward pass).
:class:`TapeSanitizer` observes both through the shared tape-hook
registry (:func:`repro.nn.tensor.install_tape_hooks`) **only while its
context is active**, so the default training path executes the exact
original code objects — zero overhead when disabled
(``tests/analysis/test_sanitizer.py`` pins this with an identity
assertion).  Because the registry dispatches to every installed
observer, a sanitizer can run concurrently with the op profiler of
:mod:`repro.obs.profiler`.

While active, the sanitizer detects:

* non-finite forward values (NaN/Inf) *at the op that produced them* —
  e.g. an injected ``log(0)`` is reported as coming from ``Tensor.log``
  with the caller's file:line, not thirty ops later at the loss;
* dtype drift away from the expected dtype (``DEFAULT_DTYPE`` unless
  overridden) — a silent float32 downcast flips tolerance-sensitive
  gradchecks and halves precision;
* non-finite gradients, reported at the backward closure of the
  producing op;
* gradient-shape mismatches (a missing ``unbroadcast`` shows up here as
  a grad whose shape differs from its parent's data);
* parameters never touched by backward
  (:meth:`TapeSanitizer.check_parameters`).

Usage::

    from repro.analysis import TapeSanitizer

    with TapeSanitizer() as tape:
        loss = model_loss(batch)
        loss.backward()          # raises TapeAnomalyError at the bad op
    untouched = tape.check_parameters(model.named_parameters())

or, for a whole training run, ``KGAGTrainer(..., sanitize=True)``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np

from ..nn.tensor import (
    _PRISTINE_ACCUMULATE,
    _PRISTINE_MAKE,
    DEFAULT_DTYPE,
    Tensor,
    install_tape_hooks,
    uninstall_tape_hooks,
)

__all__ = [
    "TapeAnomaly",
    "TapeAnomalyError",
    "TapeSanitizer",
    "sanitizer_active",
]

# The pristine tape functions (_PRISTINE_MAKE / _PRISTINE_ACCUMULATE)
# live in repro.nn.tensor, which owns the hook registry; they are
# imported above because the test-suite asserts the default path still
# *is* them (no wrapping when disabled).

_active: "TapeSanitizer | None" = None


def sanitizer_active() -> bool:
    """True while a :class:`TapeSanitizer` context is patched in."""
    return _active is not None


@dataclass(frozen=True)
class TapeAnomaly:
    """One detected anomaly, attributed to the op that produced it."""

    kind: str  # non-finite-forward | dtype-drift | non-finite-grad |
    #            grad-shape-mismatch | untouched-parameter
    op: str  # qualname of the producing op (or parameter name)
    location: str  # file:line of the producing call site
    message: str
    severity: str = "error"  # "error" anomalies raise; "warning" only record

    def render(self) -> str:
        return f"[{self.kind}] op={self.op} at {self.location}: {self.message}"


class TapeAnomalyError(RuntimeError):
    """Raised at the producing op when ``raise_on_anomaly`` is set."""

    def __init__(self, anomaly: TapeAnomaly):
        super().__init__(anomaly.render())
        self.anomaly = anomaly


def _op_site(depth: int) -> tuple[str, str]:
    """(op qualname, file:line) of the frame ``depth`` levels up.

    Accumulation dispatch helpers (``_accumulate_exclusive`` falling
    back to the hooked path, ``_give``) are skipped so anomalies are
    charged to the backward closure that produced the gradient, not the
    plumbing between it and the hook.
    """
    frame = sys._getframe(depth)
    while frame.f_code.co_name in _DISPATCH_FRAMES and frame.f_back is not None:
        frame = frame.f_back
    code = frame.f_code
    op = getattr(code, "co_qualname", code.co_name)
    return op, f"{code.co_filename}:{frame.f_lineno}"


# Stack depth from _op_site up to the op that invoked the hook:
# _op_site <- _check_* <- on_make/on_accumulate <- _hooked_* (tensor.py)
# <- op / backward closure.
_OP_DEPTH = 4

# Gradient-routing helpers in tensor.py that may sit between the hook
# and the real backward closure.
_DISPATCH_FRAMES = frozenset({"_accumulate_exclusive", "_give"})


class _SanitizerTapeHooks:
    """The one hooks object the sanitizer keeps on the tape registry.

    Events are charged to the innermost active sanitizer (``_active``),
    so nested contexts keep their historical semantics while the
    registry itself only sees a single observer.
    """

    def on_make(self, data, parents, backward) -> None:
        if _active is not None:
            # Inspect the raw op output: Tensor.__init__ coerces float32
            # back to DEFAULT_DTYPE, so drift is only visible before
            # construction.
            _active._check_forward(np.asarray(data))

    def on_accumulate(self, tensor, grad) -> None:
        if _active is not None:
            _active._check_grad(tensor, grad)


_SANITIZER_HOOKS = _SanitizerTapeHooks()


class TapeSanitizer:
    """Context manager that instruments the autograd tape.

    Parameters
    ----------
    raise_on_anomaly:
        Raise :class:`TapeAnomalyError` at the first error-severity
        anomaly (default).  With ``False`` all anomalies are collected in
        :attr:`anomalies` for post-hoc inspection.
    check_finite / check_dtype / check_grad_shape:
        Toggle the individual detectors.
    expected_dtype:
        Dtype every op output should keep (default
        ``repro.nn.tensor.DEFAULT_DTYPE``).
    """

    def __init__(
        self,
        raise_on_anomaly: bool = True,
        check_finite: bool = True,
        check_dtype: bool = True,
        check_grad_shape: bool = True,
        expected_dtype=None,
    ):
        self.raise_on_anomaly = raise_on_anomaly
        self.check_finite = check_finite
        self.check_dtype = check_dtype
        self.check_grad_shape = check_grad_shape
        self.expected_dtype = np.dtype(expected_dtype or DEFAULT_DTYPE)
        self.anomalies: list[TapeAnomaly] = []
        self._previous: "TapeSanitizer | None" = None

    # -- context protocol ---------------------------------------------------
    def __enter__(self) -> "TapeSanitizer":
        global _active
        self._previous = _active
        _active = self
        if self._previous is None:
            install_tape_hooks(_SANITIZER_HOOKS)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _active
        _active = self._previous
        if _active is None:
            # Drop our hooks; with no other observer installed the tape
            # registry restores the pristine, unwrapped code paths.
            uninstall_tape_hooks(_SANITIZER_HOOKS)

    # -- detectors ----------------------------------------------------------
    def _record(self, anomaly: TapeAnomaly) -> None:
        self.anomalies.append(anomaly)
        if self.raise_on_anomaly and anomaly.severity == "error":
            raise TapeAnomalyError(anomaly)

    def _check_forward(self, data: np.ndarray) -> None:
        if self.check_finite and not np.all(np.isfinite(data)):
            op, location = _op_site(_OP_DEPTH)
            bad = int(np.size(data) - np.count_nonzero(np.isfinite(data)))
            self._record(
                TapeAnomaly(
                    kind="non-finite-forward",
                    op=op,
                    location=location,
                    message=f"{bad} non-finite value(s) in the op output "
                    f"(shape {np.shape(data)})",
                )
            )
        if self.check_dtype and data.dtype != self.expected_dtype and (
            data.dtype.kind == "f"
        ):
            op, location = _op_site(_OP_DEPTH)
            self._record(
                TapeAnomaly(
                    kind="dtype-drift",
                    op=op,
                    location=location,
                    message=f"op output dtype {data.dtype} drifted from "
                    f"{self.expected_dtype}",
                    severity="warning",
                )
            )

    def _check_grad(self, tensor: Tensor, grad: np.ndarray) -> None:
        if self.check_grad_shape and np.shape(grad) != tensor.data.shape:
            op, location = _op_site(_OP_DEPTH)
            self._record(
                TapeAnomaly(
                    kind="grad-shape-mismatch",
                    op=op,
                    location=location,
                    message=f"gradient shape {np.shape(grad)} does not match "
                    f"parent data shape {tensor.data.shape} — missing "
                    "unbroadcast in the backward closure?",
                )
            )
        if self.check_finite and not np.all(np.isfinite(grad)):
            op, location = _op_site(_OP_DEPTH)
            bad = int(np.size(grad) - np.count_nonzero(np.isfinite(grad)))
            self._record(
                TapeAnomaly(
                    kind="non-finite-grad",
                    op=op,
                    location=location,
                    message=f"{bad} non-finite value(s) in the gradient "
                    f"(shape {np.shape(grad)})",
                )
            )

    # -- post-backward checks ----------------------------------------------
    def check_parameters(self, named_parameters) -> list[TapeAnomaly]:
        """Record a warning anomaly per parameter with no gradient.

        Call after ``loss.backward()``; accepts the ``(name, parameter)``
        pairs of ``Module.named_parameters()`` (or bare parameters).
        Never raises — a parameter can be legitimately idle in one batch
        (e.g. an ablated head); persistent idleness across a whole epoch
        is the real smell.
        """
        found: list[TapeAnomaly] = []
        for entry in named_parameters:
            name, parameter = entry if isinstance(entry, tuple) else (
                getattr(entry, "name", None) or "<unnamed>",
                entry,
            )
            if parameter.grad is None:
                anomaly = TapeAnomaly(
                    kind="untouched-parameter",
                    op=str(name),
                    location="<post-backward>",
                    message="parameter received no gradient from backward()",
                    severity="warning",
                )
                found.append(anomaly)
                self.anomalies.append(anomaly)
        return found

    # -- reporting ----------------------------------------------------------
    def summary(self) -> str:
        """Human-readable multi-line summary of everything recorded."""
        if not self.anomalies:
            return "tape sanitizer: no anomalies"
        lines = [f"tape sanitizer: {len(self.anomalies)} anomaly(ies)"]
        lines.extend("  " + anomaly.render() for anomaly in self.anomalies)
        return "\n".join(lines)
