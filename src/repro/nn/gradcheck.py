"""Numerical gradient checking used by the test-suite.

Central finite differences against the analytic gradients produced by the
tape.  Every primitive op in ``repro.nn`` is validated this way.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor, no_grad

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. ``inputs[index]``."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    # The perturbation writes through a view of target.data, so the whole
    # probe runs under no_grad: only forward values are needed and no tape
    # may capture the temporarily-perturbed arrays.
    with no_grad():
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = float(fn(*inputs).sum().item())
            flat[i] = original - eps
            minus = float(fn(*inputs).sum().item())
            flat[i] = original
            grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients match numerical ones for all inputs.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = fn(*inputs)
    output.sum().backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
