"""Resilience: circuit breaker transitions, deadlines, fallback answers."""

import time

import numpy as np
import pytest

from repro.serve import CircuitBreaker, ResilientScorer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _fallback(group_id):
    return np.full(5, -float(group_id), dtype=np.float64)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_timeout_then_close_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=30.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(29.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # half-open: one trial permitted
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=5, reset_timeout=10.0, clock=clock)
        for _ in range(5):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()  # trial failed -> straight back to open
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)


class TestResilientScorer:
    def test_primary_path(self):
        scorer = ResilientScorer(
            primary=lambda g: np.full(5, float(g)),
            fallback=_fallback,
            deadline_ms=None,
        )
        answer = scorer.scores(3)
        assert answer.source == "primary"
        np.testing.assert_array_equal(answer.scores, np.full(5, 3.0))
        assert scorer.stats()["primary_answers"] == 1
        scorer.close()

    def test_primary_error_falls_back_and_trips_breaker(self):
        calls = {"n": 0}

        def broken(group_id):
            calls["n"] += 1
            raise RuntimeError("model exploded")

        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0, clock=FakeClock())
        scorer = ResilientScorer(
            primary=broken, fallback=_fallback, deadline_ms=None, breaker=breaker
        )
        first = scorer.scores(4)
        assert first.source == "fallback:error"
        np.testing.assert_array_equal(first.scores, _fallback(4))
        second = scorer.scores(4)
        assert second.source == "fallback:error"
        # Breaker is now open: the primary is no longer even attempted.
        third = scorer.scores(4)
        assert third.source == "fallback:circuit-open"
        assert calls["n"] == 2
        stats = scorer.stats()
        assert stats["primary_errors"] == 2
        assert stats["fallback_answers"] == 3
        assert stats["breaker_state"] == CircuitBreaker.OPEN
        scorer.close()

    def test_deadline_miss_falls_back(self):
        def slow(group_id):
            time.sleep(0.25)
            return np.zeros(5)

        scorer = ResilientScorer(primary=slow, fallback=_fallback, deadline_ms=10.0)
        answer = scorer.scores(1)
        assert answer.source == "fallback:deadline"
        np.testing.assert_array_equal(answer.scores, _fallback(1))
        assert scorer.stats()["deadline_misses"] == 1
        scorer.close()

    def test_recovery_after_reset_timeout(self):
        clock = FakeClock()
        healthy = {"ok": False}

        def flaky(group_id):
            if not healthy["ok"]:
                raise RuntimeError("down")
            return np.full(5, 7.0)

        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        scorer = ResilientScorer(
            primary=flaky, fallback=_fallback, deadline_ms=None, breaker=breaker
        )
        assert scorer.scores(0).source == "fallback:error"
        assert scorer.scores(0).source == "fallback:circuit-open"
        healthy["ok"] = True
        clock.advance(5.0)  # half-open: trial request goes to the primary
        answer = scorer.scores(0)
        assert answer.source == "primary"
        assert breaker.state == CircuitBreaker.CLOSED
        scorer.close()

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            ResilientScorer(primary=lambda g: None, fallback=_fallback, deadline_ms=0.0)


class TestHungPrimary:
    """Regression: a deadline miss must cancel its future, so a hung
    primary cannot pin abandoned queued work behind it and exhaust the
    worker pool."""

    def test_queued_requests_cancelled_on_deadline_miss(self):
        import threading

        release = threading.Event()
        started = []

        def hung(group_id):
            started.append(group_id)
            release.wait(10.0)
            return np.zeros(5)

        breaker = CircuitBreaker(failure_threshold=100, clock=FakeClock())
        scorer = ResilientScorer(
            primary=hung,
            fallback=_fallback,
            deadline_ms=30.0,
            breaker=breaker,
            max_workers=1,
        )
        try:
            # First request occupies the lone worker past its deadline.
            first = scorer.scores(1)
            assert first.source == "fallback:deadline"
            # These would queue behind the hung worker forever; cancel-on-
            # miss removes them from the queue instead.
            for group in (2, 3):
                answer = scorer.scores(group)
                assert answer.source == "fallback:deadline"
            stats = scorer.stats()
            assert stats["deadline_misses"] == 3
            # The running call cannot be cancelled; the queued ones can.
            assert stats["cancelled_futures"] == 2
        finally:
            release.set()
            scorer.close()
        # The cancelled calls never executed: only the hung one started.
        assert started == [1]

    def test_stats_expose_cancellations(self):
        scorer = ResilientScorer(
            primary=lambda g: np.zeros(5), fallback=_fallback, deadline_ms=None
        )
        assert scorer.stats()["cancelled_futures"] == 0
        scorer.close()
