"""Delta batches: the schema for online dataset growth, and ``apply_delta``.

A :class:`DeltaBatch` is an immutable description of *what arrived*
between two snapshots of the world — new users, items, attribute
entities, relations, KG edges, interactions, and groups — parsed from a
JSONL feed (one JSON record per line, see :data:`DELTA_OPS`).

Stable addressing
-----------------
Delta records never mention raw collaborative-graph entity ids (those
shift when the vocabulary grows).  Nodes are addressed through id
spaces that are stable across any number of deltas:

* ``"item:<v>"``   — item id ``v`` (old items keep their ids; the j-th
  new item of a batch takes id ``num_items + j``);
* ``"attr:<j>"``   — the j-th *non-item* KG attribute entity (old
  attributes keep their indices; new ones append);
* users, groups and relations by their plain ids (all append-only).

``apply_delta`` turns those references into the grown dataset's id
layout.  Because the model equates item ids with KG entity ids, new
items are inserted *before* the attribute block::

    old entities:  [ items 0..V ) [ attributes 0..A )
    new entities:  [ items 0..V ) [ new items ) [ attributes 0..A ) [ new attrs )

so every old attribute entity shifts up by the number of new items.
That renumbering — RecBole-style incremental entity bookkeeping — is
recorded in the returned :class:`GrowthPlan`, which
:func:`repro.stream.grow.grow_state` uses to move embedding rows and
optimizer moments to their new indices bit-exactly.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from ..data.interactions import InteractionTable
from ..data.synthetic import GroupRecommendationDataset

__all__ = [
    "DELTA_OPS",
    "DeltaError",
    "DeltaBatch",
    "GrowthPlan",
    "read_delta_jsonl",
    "write_delta_jsonl",
    "apply_delta",
]

DELTA_OPS = (
    "add_user",
    "add_item",
    "add_entity",
    "add_relation",
    "add_edge",
    "add_interaction",
    "add_group",
    "add_group_interaction",
)

_NODE_KINDS = ("item", "attr")


class DeltaError(ValueError):
    """Raised when a delta record is malformed or references unknown ids."""


def _parse_node_ref(ref, record_index: int):
    """Normalize ``"item:3"`` / ``("attr", 7)`` into ``(kind, id)``."""
    if isinstance(ref, str):
        kind, _, raw = ref.partition(":")
        if kind not in _NODE_KINDS or not raw:
            raise DeltaError(
                f"record {record_index}: node ref {ref!r} must look like "
                f"'item:<id>' or 'attr:<index>'"
            )
        try:
            ident = int(raw)
        except ValueError:
            raise DeltaError(
                f"record {record_index}: node ref {ref!r} has a non-integer id"
            ) from None
    elif isinstance(ref, (tuple, list)) and len(ref) == 2:
        kind, ident = str(ref[0]), ref[1]
        if kind not in _NODE_KINDS:
            raise DeltaError(
                f"record {record_index}: node kind {kind!r} must be one of "
                f"{_NODE_KINDS}"
            )
        ident = _as_id(ident, "node id", record_index)
    else:
        raise DeltaError(f"record {record_index}: unparseable node ref {ref!r}")
    if ident < 0:
        raise DeltaError(f"record {record_index}: node id {ident} is negative")
    return kind, int(ident)


def _as_id(value, what: str, record_index: int) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise DeltaError(
            f"record {record_index}: {what} must be an integer, got {value!r}"
        )
    if int(value) < 0:
        raise DeltaError(f"record {record_index}: {what} {value} is negative")
    return int(value)


@dataclasses.dataclass(frozen=True)
class DeltaBatch:
    """One parsed batch of world growth (see the module docstring).

    All fields are plain tuples so batches are immutable value objects;
    :meth:`from_records` is the checked constructor for feed input and
    :meth:`to_records` is its inverse (used by :func:`write_delta_jsonl`).
    """

    num_new_users: int = 0
    num_new_items: int = 0
    num_new_entities: int = 0
    num_new_relations: int = 0
    item_names: tuple = ()
    entity_names: tuple = ()
    relation_names: tuple = ()
    edges: tuple = ()  # ((kind, id), relation, (kind, id)) per edge
    interactions: tuple = ()  # (user, item) pairs
    group_members: tuple = ()  # one member tuple per new group
    group_interactions: tuple = ()  # (group, item) pairs

    @property
    def num_new_groups(self) -> int:
        return len(self.group_members)

    @property
    def is_empty(self) -> bool:
        return all(
            not getattr(self, field.name)
            for field in dataclasses.fields(self)
        )

    def describe(self) -> dict:
        """Counts per record kind (the ingest report embeds this)."""
        return {
            "new_users": self.num_new_users,
            "new_items": self.num_new_items,
            "new_entities": self.num_new_entities,
            "new_relations": self.num_new_relations,
            "new_edges": len(self.edges),
            "new_interactions": len(self.interactions),
            "new_groups": self.num_new_groups,
            "new_group_interactions": len(self.group_interactions),
        }

    # -- record conversion ------------------------------------------------
    @classmethod
    def from_records(cls, records) -> "DeltaBatch":
        """Build a batch from an iterable of JSONL-shaped dicts."""
        counts = {"add_user": 0, "add_item": 0, "add_entity": 0, "add_relation": 0}
        names: dict[str, list] = {"add_item": [], "add_entity": [], "add_relation": []}
        edges, interactions, group_members, group_interactions = [], [], [], []
        for i, record in enumerate(records):
            if not isinstance(record, dict):
                raise DeltaError(f"record {i}: expected a JSON object, got {record!r}")
            op = record.get("op")
            if op not in DELTA_OPS:
                raise DeltaError(
                    f"record {i}: unknown op {op!r} (expected one of {DELTA_OPS})"
                )
            if op == "add_user":
                counts[op] += _as_count(record, i)
            elif op in ("add_item", "add_entity", "add_relation"):
                count = _as_count(record, i)
                name = record.get("name")
                if name is not None and count != 1:
                    raise DeltaError(
                        f"record {i}: 'name' requires count == 1, got {count}"
                    )
                names[op].extend([name] * count if name else [None] * count)
                counts[op] += count
            elif op == "add_edge":
                head = _parse_node_ref(record.get("head"), i)
                tail = _parse_node_ref(record.get("tail"), i)
                relation = _as_id(record.get("relation"), "relation", i)
                edges.append((head, relation, tail))
            elif op == "add_interaction":
                interactions.append(
                    (_as_id(record.get("user"), "user", i),
                     _as_id(record.get("item"), "item", i))
                )
            elif op == "add_group":
                members = record.get("members")
                if not isinstance(members, (list, tuple)) or len(members) < 2:
                    raise DeltaError(
                        f"record {i}: 'members' must list at least two user ids"
                    )
                row = tuple(_as_id(m, "member", i) for m in members)
                if len(set(row)) != len(row):
                    raise DeltaError(f"record {i}: group members must be distinct")
                group_members.append(row)
            else:  # add_group_interaction
                group_interactions.append(
                    (_as_id(record.get("group"), "group", i),
                     _as_id(record.get("item"), "item", i))
                )
        return cls(
            num_new_users=counts["add_user"],
            num_new_items=counts["add_item"],
            num_new_entities=counts["add_entity"],
            num_new_relations=counts["add_relation"],
            item_names=tuple(names["add_item"]),
            entity_names=tuple(names["add_entity"]),
            relation_names=tuple(names["add_relation"]),
            edges=tuple(edges),
            interactions=tuple(interactions),
            group_members=tuple(group_members),
            group_interactions=tuple(group_interactions),
        )

    def to_records(self) -> list[dict]:
        """The JSONL-shaped records this batch round-trips through."""
        records: list[dict] = []
        if self.num_new_users:
            records.append({"op": "add_user", "count": self.num_new_users})
        for op, count, labels in (
            ("add_item", self.num_new_items, self.item_names),
            ("add_entity", self.num_new_entities, self.entity_names),
            ("add_relation", self.num_new_relations, self.relation_names),
        ):
            labels = tuple(labels) + (None,) * (count - len(labels))
            for label in labels:
                record = {"op": op}
                if label:
                    record["name"] = label
                records.append(record)
        for (hk, hi), relation, (tk, ti) in self.edges:
            records.append(
                {"op": "add_edge", "head": f"{hk}:{hi}",
                 "relation": relation, "tail": f"{tk}:{ti}"}
            )
        for user, item in self.interactions:
            records.append({"op": "add_interaction", "user": user, "item": item})
        for members in self.group_members:
            records.append({"op": "add_group", "members": list(members)})
        for group, item in self.group_interactions:
            records.append(
                {"op": "add_group_interaction", "group": group, "item": item}
            )
        return records


def _as_count(record: dict, record_index: int) -> int:
    count = record.get("count", 1)
    if isinstance(count, bool) or not isinstance(count, (int, np.integer)) or count < 1:
        raise DeltaError(
            f"record {record_index}: 'count' must be a positive integer, "
            f"got {count!r}"
        )
    return int(count)


def read_delta_jsonl(path: str | Path) -> DeltaBatch:
    """Parse one delta feed file (one JSON record per non-blank line)."""
    path = Path(path)
    records = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as error:
                raise DeltaError(f"{path}:{lineno}: invalid JSON: {error}") from error
    return DeltaBatch.from_records(records)


def write_delta_jsonl(delta: DeltaBatch, path: str | Path) -> Path:
    """Serialize ``delta`` as a JSONL feed file (inverse of the reader)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        for record in delta.to_records():
            handle.write(json.dumps(record) + "\n")
    return path


# ---------------------------------------------------------------------------
# growth plan
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class GrowthPlan:
    """The id bookkeeping produced by :func:`apply_delta`.

    Records the old/new vocabulary sizes and the item-KG entity
    renumbering; every derived remap the embedding-growth code needs is
    computed from those, so the plan stays a small value object.
    """

    old_num_users: int
    new_num_users: int
    old_num_items: int
    new_num_items: int
    old_kg_entities: int
    new_kg_entities: int
    old_kg_relations: int
    new_kg_relations: int
    kg_entity_remap: np.ndarray  # old item-KG entity id -> new id

    @property
    def is_identity(self) -> bool:
        """True when the delta grew nothing (pure-edge/interaction deltas)."""
        return (
            self.old_num_users == self.new_num_users
            and self.old_num_items == self.new_num_items
            and self.old_kg_entities == self.new_kg_entities
            and self.old_kg_relations == self.new_kg_relations
        )

    # -- collaborative-graph layouts --------------------------------------
    @property
    def old_ckg_entities(self) -> int:
        """Entity-table rows before growth (KG entities + user entities)."""
        return self.old_kg_entities + self.old_num_users

    @property
    def new_ckg_entities(self) -> int:
        return self.new_kg_entities + self.new_num_users

    @property
    def old_relation_slots(self) -> int:
        """Relation-table rows: KG relations + Interact + self-loop."""
        return self.old_kg_relations + 2

    @property
    def new_relation_slots(self) -> int:
        return self.new_kg_relations + 2

    def ckg_entity_remap(self) -> np.ndarray:
        """Old collaborative entity id -> new id (KG block then users).

        User entities sit after the KG block, so growing the KG shifts
        every user entity by the number of new KG entities.
        """
        users = self.new_kg_entities + np.arange(self.old_num_users, dtype=np.int64)
        return np.concatenate([self.kg_entity_remap, users])

    def relation_slot_remap(self) -> np.ndarray:
        """Old relation-table slot -> new slot.

        KG relations are append-only (identity); the Interact and
        self-loop slots ride at the end of the table, so they shift by
        the number of new relations.
        """
        slots = np.arange(self.old_relation_slots, dtype=np.int64)
        slots[self.old_kg_relations] = self.new_kg_relations
        slots[self.old_kg_relations + 1] = self.new_kg_relations + 1
        return slots

    def new_entity_rows(self) -> np.ndarray:
        """Entity-table rows that exist only after growth (sorted)."""
        return np.setdiff1d(
            np.arange(self.new_ckg_entities, dtype=np.int64),
            self.ckg_entity_remap(),
        )

    def new_relation_rows(self) -> np.ndarray:
        """Relation-table rows that exist only after growth (sorted)."""
        return np.setdiff1d(
            np.arange(self.new_relation_slots, dtype=np.int64),
            self.relation_slot_remap(),
        )

    def describe(self) -> dict:
        return {
            "users": [self.old_num_users, self.new_num_users],
            "items": [self.old_num_items, self.new_num_items],
            "kg_entities": [self.old_kg_entities, self.new_kg_entities],
            "kg_relations": [self.old_kg_relations, self.new_kg_relations],
            "identity": self.is_identity,
        }


# ---------------------------------------------------------------------------
# application
# ---------------------------------------------------------------------------
def apply_delta(
    dataset: GroupRecommendationDataset, delta: DeltaBatch
) -> tuple[GroupRecommendationDataset, GrowthPlan]:
    """Apply ``delta`` to ``dataset``; returns the grown dataset + plan.

    The input dataset is untouched (all tables are rebuilt), delta
    references are validated against the *grown* vocabularies, and the
    returned :class:`GrowthPlan` records exactly how old ids moved.
    Explicit ratings are not carried over: deltas describe implicit
    feedback, and ratings only feed the offline group-construction
    protocols.
    """
    old_items = dataset.num_items
    old_users = dataset.num_users
    old_groups = dataset.groups.num_groups
    kg = dataset.kg
    if kg.num_entities < old_items:
        raise DeltaError(
            "dataset KG must embed items as entities [0, num_items) "
            f"(num_entities={kg.num_entities} < num_items={old_items})"
        )
    old_attrs = kg.num_entities - old_items
    old_relations = kg.num_relations

    new_items = old_items + delta.num_new_items
    new_attrs = old_attrs + delta.num_new_entities
    new_users = old_users + delta.num_new_users
    new_relations = old_relations + delta.num_new_relations
    new_groups = old_groups + delta.num_new_groups

    # Item ids are stable and new items slot in before the attribute
    # block, so old attribute entities shift up by the new-item count.
    remap = np.arange(kg.num_entities, dtype=np.int64)
    remap[old_items:] += delta.num_new_items

    def resolve(ref, record: str) -> int:
        kind, ident = ref
        if kind == "item":
            if ident >= new_items:
                raise DeltaError(
                    f"{record}: item {ident} out of range [0, {new_items})"
                )
            return ident
        if ident >= new_attrs:
            raise DeltaError(
                f"{record}: attribute entity {ident} out of range [0, {new_attrs})"
            )
        return new_items + ident

    triples = []
    for head, relation, tail in delta.edges:
        if relation >= new_relations:
            raise DeltaError(
                f"edge relation {relation} out of range [0, {new_relations})"
            )
        triples.append(
            (resolve(head, "edge head"), relation, resolve(tail, "edge tail"))
        )

    entity_names = {}
    for j, label in enumerate(delta.item_names):
        if label:
            entity_names[old_items + j] = label
    for j, label in enumerate(delta.entity_names):
        if label:
            entity_names[new_items + old_attrs + j] = label
    relation_names = {
        old_relations + j: label
        for j, label in enumerate(delta.relation_names)
        if label
    }

    new_kg = kg.grown(
        num_new_entities=delta.num_new_items + delta.num_new_entities,
        num_new_relations=delta.num_new_relations,
        new_triples=triples,
        entity_remap=remap,
        entity_names=entity_names,
        relation_names=relation_names,
    )

    for user, item in delta.interactions:
        if user >= new_users:
            raise DeltaError(f"interaction user {user} out of range [0, {new_users})")
        if item >= new_items:
            raise DeltaError(f"interaction item {item} out of range [0, {new_items})")
    for members in delta.group_members:
        for member in members:
            if member >= new_users:
                raise DeltaError(
                    f"group member {member} out of range [0, {new_users})"
                )
    for group, item in delta.group_interactions:
        if group >= new_groups:
            raise DeltaError(
                f"group interaction group {group} out of range [0, {new_groups})"
            )
        if item >= new_items:
            raise DeltaError(
                f"group interaction item {item} out of range [0, {new_items})"
            )

    try:
        groups = dataset.groups.extended(
            np.asarray(delta.group_members, dtype=np.int64).reshape(
                delta.num_new_groups, -1
            )
            if delta.num_new_groups
            else None,
            num_users=new_users,
        )
    except ValueError as error:
        raise DeltaError(str(error)) from error

    user_item = InteractionTable(
        new_users,
        new_items,
        _stack_pairs(dataset.user_item.pairs, delta.interactions),
    )
    group_item = InteractionTable(
        new_groups,
        new_items,
        _stack_pairs(dataset.group_item.pairs, delta.group_interactions),
    )

    grown = GroupRecommendationDataset(
        name=dataset.name,
        num_users=new_users,
        num_items=new_items,
        groups=groups,
        user_item=user_item,
        group_item=group_item,
        kg=new_kg,
        ratings=None,
        world=None,
    )
    plan = GrowthPlan(
        old_num_users=old_users,
        new_num_users=new_users,
        old_num_items=old_items,
        new_num_items=new_items,
        old_kg_entities=kg.num_entities,
        new_kg_entities=new_kg.num_entities,
        old_kg_relations=old_relations,
        new_kg_relations=new_relations,
        kg_entity_remap=remap,
    )
    return grown, plan


def _stack_pairs(old: np.ndarray, new_pairs) -> np.ndarray:
    appended = np.asarray(new_pairs, dtype=np.int64)
    if appended.size == 0:
        return old
    return np.concatenate([old, appended.reshape(-1, 2)], axis=0)
