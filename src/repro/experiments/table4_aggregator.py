"""Table IV — influence of the aggregation function (RQ3).

Compares the GCN aggregator (Eq. 5) with the GraphSage aggregator
(Eq. 6) inside KGAG on the two MovieLens-like datasets.

Shape target: GCN >= GraphSage on both datasets (the paper credits the
GCN aggregator's explicit e + e_N interaction).

Run: ``python -m repro.experiments.table4_aggregator [--profile quick]``
"""

from __future__ import annotations

import argparse

from .profiles import ExperimentProfile, get_profile
from .reporting import format_table
from .runner import SeedAveraged, run_seed_averaged

__all__ = ["run", "render", "main"]

AGGREGATORS = ("gcn", "graphsage")
DATASETS = ("movielens-rand", "movielens-simi")


def run(
    profile: ExperimentProfile, progress=None
) -> dict[tuple[str, str], SeedAveraged]:
    """Train KGAG with each aggregator on both MovieLens-like datasets."""
    results: dict[tuple[str, str], SeedAveraged] = {}
    for aggregator in AGGREGATORS:
        config = profile.model.with_overrides(aggregator=aggregator)
        for dataset_kind in DATASETS:
            results[(aggregator, dataset_kind)] = run_seed_averaged(
                "KGAG", dataset_kind, profile, config=config, progress=progress
            )
    return results


def render(results: dict[tuple[str, str], SeedAveraged], k: int = 5) -> str:
    headers = [""]
    for dataset_kind in DATASETS:
        headers += [f"{dataset_kind} rec@{k}", f"{dataset_kind} hit@{k}"]
    rows = []
    for aggregator in AGGREGATORS:
        row = [aggregator.upper() if aggregator == "gcn" else "GraphSage"]
        for dataset_kind in DATASETS:
            cell = results[(aggregator, dataset_kind)]
            row += [cell.mean(f"rec@{k}"), cell.mean(f"hit@{k}")]
        rows.append(row)
    return format_table(
        headers, rows, title="Table IV: influence of the aggregation function"
    )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="default", help="quick | default | full")
    args = parser.parse_args(argv)
    profile = get_profile(args.profile)

    def progress(model, dataset, seed, metrics):
        print(f"  [{dataset} seed {seed}] rec@5 {metrics['rec@5']:.4f}", flush=True)

    results = run(profile, progress=progress)
    print()
    print(render(results))


if __name__ == "__main__":
    main()
