"""Rule-by-rule linter tests on deliberately-planted violations.

Each fixture plants one violation of RL001–RL005 and asserts the linter
reports it with the correct rule ID and file:line, that clean equivalents
pass, and that the documented suppression comments silence findings.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Severity, rule_ids
from repro.analysis.lint import lint_paths, lint_source

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def findings_for(source: str, path: str = "module.py"):
    return lint_source(source, path).findings


def only_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


class TestRL001UnseededRandom:
    def test_legacy_global_call_flagged_with_line(self):
        source = (
            "import numpy as np\n"
            "__all__ = []\n"
            "\n"
            "def draw():\n"
            "    return np.random.rand(3)\n"
        )
        [finding] = only_rule(findings_for(source), "RL001")
        assert finding.line == 5
        assert finding.severity is Severity.ERROR
        assert "np.random.rand" in finding.message

    @pytest.mark.parametrize(
        "call", ["np.random.seed(0)", "np.random.shuffle(x)", "numpy.random.normal()"]
    )
    def test_other_legacy_calls_flagged(self, call):
        source = f"import numpy as np\nimport numpy\n__all__ = []\nx = [1]\ny = {call}\n"
        assert only_rule(findings_for(source), "RL001")

    def test_unseeded_default_rng_flagged(self):
        source = "import numpy as np\n__all__ = []\nrng = np.random.default_rng()\n"
        [finding] = only_rule(findings_for(source), "RL001")
        assert finding.line == 3
        assert "seed" in finding.message

    def test_seeded_default_rng_clean(self):
        source = (
            "import numpy as np\n__all__ = []\n"
            "a = np.random.default_rng(0)\n"
            "b = np.random.default_rng(seed=1)\n"
            "c = np.random.Generator(np.random.PCG64(2))\n"
        )
        assert not only_rule(findings_for(source), "RL001")

    def test_unrelated_random_attribute_clean(self):
        # Only the np/numpy aliases are in scope; other objects with a
        # .random attribute are not.
        source = "__all__ = []\nvalue = rng.random(3)\nother = obj.random.thing()\n"
        assert not only_rule(findings_for(source), "RL001")


class TestRL002DataMutation:
    def test_plain_assignment_flagged(self):
        source = "__all__ = []\n\ndef clobber(p):\n    p.data = p.data + 1\n"
        [finding] = only_rule(findings_for(source), "RL002")
        assert finding.line == 4

    def test_augmented_and_subscript_assignment_flagged(self):
        source = (
            "__all__ = []\n"
            "def a(p):\n"
            "    p.data += 1\n"
            "def b(p):\n"
            "    p.data[0] = 3.0\n"
        )
        lines = [f.line for f in only_rule(findings_for(source), "RL002")]
        assert lines == [3, 5]

    def test_no_grad_block_clean(self):
        source = (
            "from repro.nn import no_grad\n"
            "__all__ = []\n"
            "def step(p):\n"
            "    with no_grad():\n"
            "        p.data -= 0.1 * p.grad\n"
        )
        assert not only_rule(findings_for(source), "RL002")

    def test_qualified_no_grad_block_clean(self):
        source = (
            "from repro import nn\n"
            "__all__ = []\n"
            "def step(p):\n"
            "    with nn.no_grad():\n"
            "        p.data -= 0.1\n"
        )
        assert not only_rule(findings_for(source), "RL002")

    def test_init_constructor_exempt(self):
        source = (
            "__all__ = []\n"
            "class T:\n"
            "    def __init__(self, data):\n"
            "        self.data = data\n"
        )
        assert not only_rule(findings_for(source), "RL002")

    def test_nested_function_inside_no_grad_not_exempt(self):
        # The with-block wraps the *definition*, not the call: the closure
        # body may run long after no_grad() exited.
        source = (
            "from repro.nn import no_grad\n"
            "__all__ = []\n"
            "def outer(p):\n"
            "    with no_grad():\n"
            "        def later():\n"
            "            p.data += 1\n"
            "        return later\n"
        )
        assert only_rule(findings_for(source), "RL002")


BACKWARD_TEMPLATE = """\
__all__ = []

def multiply(a, b):
    out_data = a.data * b.data

    def backward(grad):
{body}

    return Tensor._make(out_data, (a, b), backward)
"""


class TestRL003Unbroadcast:
    def test_missing_unbroadcast_flagged(self):
        source = BACKWARD_TEMPLATE.format(
            body="        a._accumulate(grad * b.data)\n"
            "        b._accumulate(unbroadcast(grad * a.data, b.shape))"
        )
        [finding] = only_rule(findings_for(source), "RL003")
        assert finding.line == 7
        assert "unbroadcast" in finding.message

    def test_unbroadcast_on_both_parents_clean(self):
        source = BACKWARD_TEMPLATE.format(
            body="        a._accumulate(unbroadcast(grad * b.data, a.shape))\n"
            "        b._accumulate(unbroadcast(grad * a.data, b.shape))"
        )
        assert not only_rule(findings_for(source), "RL003")

    def test_single_parent_op_exempt(self):
        source = (
            "__all__ = []\n"
            "def exp(x):\n"
            "    out_data = np.exp(x.data)\n"
            "    def backward(grad):\n"
            "        x._accumulate(grad * out_data)\n"
            "    return Tensor._make(out_data, (x,), backward)\n"
        )
        assert not only_rule(findings_for(source), "RL003")

    def test_sequence_parents_with_slice_clean(self):
        # concat-style: parents arrive as a list variable, gradients are
        # slices of grad — no broadcasting possible, allowed.
        source = (
            "__all__ = []\n"
            "def concat(tensors):\n"
            "    out_data = join(tensors)\n"
            "    def backward(grad):\n"
            "        for t in tensors:\n"
            "            t._accumulate(grad[0:1])\n"
            "    return Tensor._make(out_data, tensors, backward)\n"
        )
        assert not only_rule(findings_for(source), "RL003")

    def test_grad_inplace_mutation_flagged(self):
        source = BACKWARD_TEMPLATE.format(
            body="        grad *= 2\n"
            "        a._accumulate(unbroadcast(grad, a.shape))\n"
            "        b._accumulate(unbroadcast(grad, b.shape))"
        )
        [finding] = only_rule(findings_for(source), "RL003")
        assert "in-place mutation" in finding.message


class TestRL004BareExcept:
    def test_bare_except_flagged(self):
        source = (
            "__all__ = []\n"
            "def risky():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        pass\n"
        )
        [finding] = only_rule(findings_for(source), "RL004")
        assert finding.line == 5

    def test_typed_except_clean(self):
        source = (
            "__all__ = []\n"
            "def risky():\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        assert not only_rule(findings_for(source), "RL004")


class TestRL005MissingAll:
    def test_module_without_all_flagged(self):
        [finding] = only_rule(findings_for("x = 1\n", "src/repro/foo.py"), "RL005")
        assert finding.line == 1
        assert finding.severity is Severity.WARNING

    def test_module_with_all_clean(self):
        assert not findings_for("__all__ = ['x']\nx = 1\n", "src/repro/foo.py")

    def test_test_and_bench_paths_exempt(self):
        for path in ("tests/test_foo.py", "benchmarks/bench_foo.py", "examples/demo.py"):
            assert not only_rule(findings_for("x = 1\n", path), "RL005")

    def test_main_and_conftest_exempt(self):
        for path in ("src/repro/__main__.py", "src/conftest.py"):
            assert not only_rule(findings_for("x = 1\n", path), "RL005")


class TestRL006TapeRegistryMutation:
    REBIND = (
        "__all__ = []\n"
        "from repro.nn import Tensor\n"
        "\n"
        "def hijack(fn):\n"
        "    Tensor._make = fn\n"
    )

    def test_rebinding_choke_point_flagged(self):
        [finding] = only_rule(
            findings_for(self.REBIND, "src/repro/obs/gadget.py"), "RL006"
        )
        assert finding.line == 5
        assert finding.severity is Severity.ERROR
        assert "install_tape_hooks" in finding.message

    def test_accumulate_rebind_flagged(self):
        source = "__all__ = []\ndef f(cls, fn):\n    cls._accumulate = fn\n"
        [finding] = only_rule(findings_for(source, "tools/patch.py"), "RL006")
        assert finding.line == 3

    def test_registry_append_flagged(self):
        source = (
            "__all__ = []\n"
            "from repro.nn.tensor import _tape_hooks\n"
            "_tape_hooks.append(object())\n"
        )
        [finding] = only_rule(findings_for(source, "tools/patch.py"), "RL006")
        assert finding.line == 3
        assert "_tape_hooks.append" in finding.message

    def test_setattr_flagged(self):
        source = "__all__ = []\nsetattr(Tensor, '_make', lambda *a: None)\n"
        [finding] = only_rule(findings_for(source, "tools/patch.py"), "RL006")
        assert finding.line == 2

    def test_delete_flagged(self):
        source = "__all__ = []\ndef f(cls):\n    del cls._accumulate\n"
        assert only_rule(findings_for(source, "tools/patch.py"), "RL006")

    def test_repro_nn_itself_exempt(self):
        assert not only_rule(
            findings_for(self.REBIND, "src/repro/nn/tensor.py"), "RL006"
        )

    def test_calls_and_reads_clean(self):
        source = (
            "__all__ = []\n"
            "from repro.nn import Tensor, install_tape_hooks, uninstall_tape_hooks\n"
            "\n"
            "def observe(hooks, data, parents, backward):\n"
            "    install_tape_hooks(hooks)\n"
            "    out = Tensor._make(data, parents, backward)\n"
            "    pristine = Tensor._accumulate\n"
            "    uninstall_tape_hooks(hooks)\n"
            "    return out, pristine\n"
        )
        assert not only_rule(findings_for(source, "src/repro/obs/gadget.py"), "RL006")

    def test_suppression_comment_honored(self):
        source = (
            "__all__ = []\n"
            "def hijack(cls, fn):\n"
            "    cls._make = fn  # repro-lint: disable=RL006\n"
        )
        assert not only_rule(findings_for(source, "tools/patch.py"), "RL006")


class TestSuppression:
    def test_line_level_disable(self):
        source = (
            "import numpy as np\n"
            "__all__ = []\n"
            "rng = np.random.default_rng()  # repro-lint: disable=RL001\n"
        )
        assert not findings_for(source)

    def test_line_level_disable_wrong_rule_keeps_finding(self):
        source = (
            "import numpy as np\n"
            "__all__ = []\n"
            "rng = np.random.default_rng()  # repro-lint: disable=RL004\n"
        )
        assert only_rule(findings_for(source), "RL001")

    def test_file_level_disable(self):
        source = (
            "# repro-lint: disable-file=RL005\n"
            "x = 1\n"
        )
        assert not findings_for(source, "src/repro/foo.py")

    def test_disable_all_keyword(self):
        source = (
            "import numpy as np\n"
            "x = np.random.rand()  # repro-lint: disable=all\n"
        )
        assert not only_rule(findings_for(source), "RL001")


class TestDriver:
    def test_planted_fixture_file_reports_all_rules(self, tmp_path):
        """One file violating RL001–RL005 at known lines, via the public API."""
        fixture = tmp_path / "planted.py"
        fixture.write_text(
            "import numpy as np\n"  # 1
            "\n"  # 2  (no __all__ -> RL005 at line 1)
            "def sample():\n"  # 3
            "    return np.random.rand(4)\n"  # 4  RL001
            "\n"
            "def clobber(p):\n"  # 6
            "    p.data += 1\n"  # 7  RL002
            "\n"
            "def mul(a, b):\n"  # 9
            "    out = a.data * b.data\n"  # 10
            "    def backward(grad):\n"  # 11
            "        a._accumulate(grad * b.data)\n"  # 12  RL003
            "    return Tensor._make(out, (a, b), backward)\n"  # 13
            "\n"
            "def swallow():\n"  # 15
            "    try:\n"  # 16
            "        mul(1, 2)\n"  # 17
            "    except:\n"  # 18  RL004
            "        pass\n"  # 19
        )
        result = lint_paths([tmp_path])
        located = {(f.rule, f.line) for f in result.findings}
        assert located == {
            ("RL001", 4),
            ("RL002", 7),
            ("RL003", 12),
            ("RL004", 18),
            ("RL005", 1),
        }
        assert all(str(fixture) == f.path for f in result.findings)
        assert result.exit_code() == 1

    def test_select_restricts_rules(self, tmp_path):
        fixture = tmp_path / "planted.py"
        fixture.write_text("import numpy as np\nx = np.random.rand()\n")
        result = lint_paths([fixture], select=["RL004"])
        assert not result.findings

    def test_unknown_select_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="RL999"):
            lint_paths([tmp_path], select=["RL999"])

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no_such"):
            lint_paths([tmp_path / "no_such"])

    def test_syntax_error_is_parse_failure(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        result = lint_paths([bad])
        assert result.parse_failures
        assert result.exit_code() == 1

    def test_warning_only_affects_exit_in_strict_mode(self):
        result = lint_source("x = 1\n", "src/repro/foo.py")
        assert result.warnings and not result.errors
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 1

    def test_cli_reports_rule_and_location(self, tmp_path):
        fixture = tmp_path / "planted.py"
        fixture.write_text("import numpy as np\n__all__ = []\nx = np.random.rand()\n")
        process = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", str(fixture)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"},
        )
        assert process.returncode == 1
        assert f"{fixture}:3:4: RL001" in process.stdout

    def test_rule_ids_are_stable(self):
        assert rule_ids() == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
            "RL101", "RL102", "RL103", "RL104", "RL105", "RL107",
        ]
