"""Multi-thread stress suite under the lockset race detector.

``python -m repro.analysis.race_smoke`` (the ``make race-smoke``
target) hammers the thread-shared serving and observability objects —
:class:`~repro.obs.metrics.MetricsRegistry`, :class:`~repro.obs.trace.
Tracer`, :class:`~repro.serve.cache.ScoreCache`, :class:`~repro.serve.
engine.MicroBatcher`, :class:`~repro.serve.fallback.ResilientScorer`,
:class:`~repro.serve.fallback.CircuitBreaker` and the parallel
trainer's reduction counters
(:class:`~repro.core.parallel.ParallelStats`) — from N concurrent
threads, twice: once bare (the zero-overhead baseline) and once with
every object tracked by :class:`~repro.analysis.racecheck.RaceDetector`.
The run fails (exit 1) if the detector reports any lockset violation,
and prints the two wall times so the detector's overhead stays an
explicit, measured number.

The workload is deterministic — a stub engine computes ``group + item``
scores, every 13th group's primary scorer raises to exercise the
circuit breaker, and thread scheduling only affects interleaving, which
the Eraser lockset algorithm is insensitive to by construction.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Sequence

import numpy as np

from ..core.parallel import ParallelStats
from ..obs.metrics import LATENCY_MS_BUCKETS, MetricsRegistry
from ..obs.trace import Tracer
from ..serve.cache import ScoreCache
from ..serve.engine import MicroBatcher
from ..serve.fallback import CircuitBreaker, ResilientScorer
from .racecheck import RaceDetector

__all__ = ["StressResult", "run_stress", "main"]

NUM_ITEMS = 32
FAILING_GROUP = 7  # groups hitting this id (mod 13) exercise the breaker


class _StubEngine:
    """Deterministic engine stand-in: score(group, item) = group + item."""

    num_items = NUM_ITEMS

    def scores_for_groups(self, group_ids) -> np.ndarray:
        base = np.arange(self.num_items, dtype=np.float64)
        return np.stack([base + float(g) for g in group_ids])


class StressResult:
    """Wall time plus detector verdict for one stress run."""

    def __init__(self, elapsed: float, violations: list):
        self.elapsed = elapsed
        self.violations = violations

    @property
    def ok(self) -> bool:
        return not self.violations


def _build_stack():
    """One fresh serving/observability stack for a stress run."""
    registry = MetricsRegistry()
    counter = registry.counter("smoke/requests", help="stress requests")
    histogram = registry.histogram(
        "smoke/latency_ms", buckets=LATENCY_MS_BUCKETS, help="stress latency"
    )
    tracer = Tracer()
    cache = ScoreCache(capacity=64)
    batcher = MicroBatcher(_StubEngine(), max_wait_ms=0.2, max_batch=8)
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=0.005)

    def primary(group_id: int) -> np.ndarray:
        if group_id % 13 == FAILING_GROUP:
            raise RuntimeError("injected primary failure")
        return batcher.scores_for_group(group_id)

    def fallback(group_id: int) -> np.ndarray:
        return np.zeros(NUM_ITEMS, dtype=np.float64)

    resilient = ResilientScorer(
        primary, fallback, deadline_ms=None, breaker=breaker
    )
    parallel_stats = ParallelStats()
    return (registry, counter, histogram, tracer, cache, batcher, resilient,
            breaker, parallel_stats)


def _worker(stack, worker_id: int, iterations: int) -> None:
    (registry, counter, histogram, tracer, cache, batcher, resilient,
     breaker, parallel_stats) = stack
    for i in range(iterations):
        group = (worker_id * 31 + i) % 64
        with tracer.span("request"):
            counter.inc()
            histogram.observe(float(i % 10))
            key = (group, "v0")
            vector = cache.get(key)
            if vector is None:
                answer = resilient.scores(group)
                cache.put(key, answer.scores)
        # The parallel trainer's reduction counters: writer (record) and
        # reader (snapshot) racing, as a metric exporter would.
        parallel_stats.record_round(batches=4, sparse_rows=i % 32)
        if i % 16 == 0:
            registry.snapshot()
            breaker.allow()
            resilient.stats()
            cache.stats()
            parallel_stats.record_epoch()
            parallel_stats.snapshot()


def run_stress(
    threads: int, iterations: int, detect: bool, capture_stacks: bool = False
) -> StressResult:
    """Run the stress workload; ``detect`` wraps every object in tracking."""
    stack = _build_stack()
    (registry, counter, histogram, tracer, cache, batcher, resilient,
     breaker, parallel_stats) = stack
    detector = RaceDetector(capture_stacks=capture_stacks)
    if detect:
        for obj in (registry, counter, histogram, tracer, cache,
                    batcher, resilient, breaker, parallel_stats):
            detector.track(obj)
    workers = [
        threading.Thread(
            target=_worker, args=(stack, worker_id, iterations),
            name=f"stress-{worker_id}",
        )
        for worker_id in range(threads)
    ]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - start
    if detect:
        detector.untrack_all()
    resilient.close()
    batcher.close()
    return StressResult(elapsed, list(detector.violations))


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.race_smoke",
        description="Stress the thread-shared serve/obs objects under the "
        "lockset race detector.",
    )
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--iterations", type=int, default=200)
    parser.add_argument(
        "--stacks",
        action="store_true",
        help="capture per-access stack traces (slower, richer reports)",
    )
    args = parser.parse_args(argv)

    baseline = run_stress(args.threads, args.iterations, detect=False)
    tracked = run_stress(
        args.threads, args.iterations, detect=True, capture_stacks=args.stacks
    )
    ratio = tracked.elapsed / baseline.elapsed if baseline.elapsed > 0 else 0.0
    print(f"race-smoke: {args.threads} threads x {args.iterations} iterations")
    print(f"  detector off: {baseline.elapsed * 1e3:9.1f} ms")
    print(f"  detector on:  {tracked.elapsed * 1e3:9.1f} ms  ({ratio:.1f}x)")
    if tracked.violations:
        print(f"  violations: {len(tracked.violations)}")
        for violation in tracked.violations:
            print(violation.render())
        return 1
    print("  violations: 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
