"""Span semantics: nesting, clock injection, decorator, exception safety."""

import threading

import pytest

from repro.obs import NULL_TRACER, Tracer


class FakeClock:
    """Deterministic monotonic clock advanced by the test."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestSpans:
    def test_nested_spans_record_depth_and_parent(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(2.0)
            clock.advance(1.0)
        assert outer.depth == 0 and inner.depth == 1
        assert inner.parent_id == outer.span_id
        assert inner.duration == 2.0
        assert outer.duration == 4.0

    def test_breakdown_self_time_excludes_children(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(3.0)
        breakdown = tracer.breakdown()
        assert breakdown["outer"]["total"] == 4.0
        assert breakdown["outer"]["self"] == 1.0
        assert breakdown["inner"]["self"] == 3.0

    def test_total_sums_only_root_spans(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("a"):
            clock.advance(1.0)
            with tracer.span("child"):
                clock.advance(1.0)
        with tracer.span("b"):
            clock.advance(2.0)
        assert tracer.total() == 4.0

    def test_span_closed_on_exception(self, clock):
        tracer = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.end is not None and span.duration == 1.0

    def test_decorator_names_span_after_function(self, clock):
        tracer = Tracer(clock=clock)

        @tracer.traced()
        def work():
            clock.advance(0.5)
            return 42

        assert work() == 42
        assert tracer.spans[0].name.endswith("work")
        assert tracer.breakdown()[tracer.spans[0].name]["calls"] == 1

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        seen_depths = []

        def worker():
            with tracer.span("thread-root") as span:
                seen_depths.append(span.depth)

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker's span must not nest under the main thread's open span.
        assert seen_depths == [0]

    def test_reset_clears_completed_spans(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("a"):
            clock.advance(1.0)
        tracer.reset()
        assert tracer.spans == [] and tracer.total() == 0.0

    def test_render_lists_spans(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("phase"):
            clock.advance(0.25)
        rendered = tracer.render()
        assert "phase" in rendered and "250.000 ms" in rendered


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything") as span:
            assert span is None
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.breakdown() == {}
        assert NULL_TRACER.total() == 0.0

    def test_null_traced_returns_function_unchanged(self):
        def fn():
            return 1

        assert NULL_TRACER.traced()(fn) is fn
