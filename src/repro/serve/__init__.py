"""repro.serve — batched, cached, fault-tolerant recommendation serving.

The training stack optimizes for gradient fidelity; this package
optimizes for request latency.  The split follows the KGCN / SIAGR
serving recipe: freeze the expensive knowledge-graph propagation into an
offline artifact, keep only the cheap per-request group-attention math
online.

* :mod:`~repro.serve.index` — :class:`EmbeddingIndex`: the offline
  artifact (frozen embeddings, weights, neighbor tables; ``.npz`` +
  metadata + content fingerprint);
* :mod:`~repro.serve.engine` — :class:`RankingEngine`: tape-free numpy
  scoring with request micro-batching and seen-item masking;
* :mod:`~repro.serve.cache` — :class:`ScoreCache`: bounded LRU of
  per-group score vectors keyed on the index version;
* :mod:`~repro.serve.fallback` — deadline, circuit breaker and the
  popularity fallback;
* :mod:`~repro.serve.server` — the stdlib HTTP JSON API
  (``/recommend``, ``/explain``, ``/healthz``, ``/stats``);
* :mod:`~repro.serve.admission` — per-endpoint admission control
  (bounded in-flight permits, bounded queue, 429 load shedding);
* :mod:`~repro.serve.pool` — :class:`ServingPool`: N pre-forked worker
  processes sharing one memory-mapped index artifact and one port;
* :mod:`~repro.serve.smoke` — the end-to-end smoke check behind
  ``make serve-smoke``;
* :mod:`~repro.serve.load_smoke` — the multi-process + load-shedding
  drill behind ``make load-smoke``.

Build an index with ``python -m repro build-index`` and serve it with
``python -m repro serve``; see ``docs/serving.md``.
"""

from .admission import AdmissionConfig, AdmissionController, ShedError
from .cache import CacheStats, ScoreCache
from .engine import (
    LiveModelIndex,
    MicroBatcher,
    RankedItem,
    RankingEngine,
    engine_supports,
)
from .fallback import CircuitBreaker, FallbackAnswer, ResilientScorer
from .index import EmbeddingIndex, build_index
from .pool import ServingPool, reuse_port_available
from .server import RecommendationServer, RecommendationService, ServiceError

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ShedError",
    "CacheStats",
    "ScoreCache",
    "LiveModelIndex",
    "engine_supports",
    "MicroBatcher",
    "RankedItem",
    "RankingEngine",
    "CircuitBreaker",
    "FallbackAnswer",
    "ResilientScorer",
    "EmbeddingIndex",
    "build_index",
    "ServingPool",
    "reuse_port_available",
    "RecommendationServer",
    "RecommendationService",
    "ServiceError",
]
