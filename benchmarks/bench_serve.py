"""Serving-path benchmarks: indexed engine vs naive per-request model path.

Three questions, answered with numbers:

1. How much faster is one ``top_k`` answer through the frozen
   :class:`~repro.serve.index.EmbeddingIndex` + tape-free
   :class:`~repro.serve.engine.RankingEngine` than through the full
   autograd model (``GroupRecommender.recommend``)?
2. What does the score cache buy on a skewed (Zipf-like) request
   stream — the realistic serving workload?
3. What are the end-to-end service latency percentiles (p50/p95)
   through :class:`~repro.serve.server.RecommendationService`,
   including cache, batching bookkeeping and the resilience wrapper?

The p50/p95 numbers for (3) are stored in ``extra_info`` so
``--benchmark-json`` output records them alongside the timing stats.
"""

import numpy as np
import pytest

from repro.core import KGAG, KGAGConfig, GroupRecommender
from repro.data import MovieLensLikeConfig, movielens_like, split_interactions
from repro.serve import (
    RankingEngine,
    RecommendationService,
    ScoreCache,
    build_index,
)


@pytest.fixture(scope="module")
def dataset():
    return movielens_like(
        "rand",
        MovieLensLikeConfig(num_users=120, num_items=200, num_groups=30, seed=0),
    )


@pytest.fixture(scope="module")
def split(dataset):
    return split_interactions(dataset.group_item, rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def model(dataset):
    return KGAG(
        dataset.kg,
        dataset.num_users,
        dataset.num_items,
        dataset.user_item.pairs,
        dataset.groups,
        KGAGConfig(embedding_dim=32, num_layers=2, num_neighbors=4, seed=0),
    )


@pytest.fixture(scope="module")
def index(model, dataset, split):
    return build_index(
        model, train_interactions=split.train, user_interactions=dataset.user_item
    )


@pytest.fixture(scope="module")
def skewed_groups(dataset):
    # Zipf-ish skew: a few hot groups dominate, like real serving traffic.
    rng = np.random.default_rng(7)
    raw = rng.zipf(1.5, size=400)
    return ((raw - 1) % dataset.groups.num_groups).astype(np.int64)


def test_naive_model_top_k(benchmark, model, split):
    recommender = GroupRecommender(model, split.train)
    benchmark(recommender.recommend, 3, 10)


def test_indexed_engine_top_k(benchmark, index):
    engine = RankingEngine(index)
    benchmark(engine.top_k, 3, 10)


def test_indexed_engine_top_k_cached(benchmark, index):
    engine = RankingEngine(index, cache=ScoreCache(64))
    engine.top_k(3, 10)  # warm the cache: steady-state hot-group latency
    benchmark(engine.top_k, 3, 10)


def test_skewed_stream_no_cache(benchmark, index, skewed_groups):
    engine = RankingEngine(index)

    def stream():
        for group in skewed_groups:
            engine.top_k(int(group), 10)

    benchmark.pedantic(stream, iterations=1, rounds=3)


def test_skewed_stream_with_cache(benchmark, index, skewed_groups):
    def stream():
        cache = ScoreCache(64)
        engine = RankingEngine(index, cache=cache)
        for group in skewed_groups:
            engine.top_k(int(group), 10)
        return cache.stats()

    stats = benchmark.pedantic(stream, iterations=1, rounds=3)
    benchmark.extra_info["cache_hit_rate"] = round(stats.hit_rate, 4)
    assert stats.hit_rate > 0.5  # the skewed stream must actually hit


def test_service_latency_percentiles(benchmark, index, skewed_groups):
    def serve_stream():
        service = RecommendationService(index, deadline_ms=None, batch_wait_ms=0.0)
        try:
            for group in skewed_groups:
                service.recommend(int(group), k=10)
            return service.stats()
        finally:
            service.close()

    stats = benchmark.pedantic(serve_stream, iterations=1, rounds=3)
    benchmark.extra_info["latency_ms"] = stats["latency_ms"]
    benchmark.extra_info["cache_hit_rate"] = stats["cache"]["hit_rate"]
    assert stats["latency_ms"]["p95"] >= stats["latency_ms"]["p50"]
