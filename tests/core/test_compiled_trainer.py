"""Trainer integration for the compiled executor (``compile=True``).

The contract under test: a compiled trainer is *indistinguishable* from
a dynamic one — identical loss trajectory (exact float equality) and
identical final parameters (``np.array_equal``) — across the config
matrix, while actually replaying compiled programs; and every documented
fallback trigger drops to the dynamic tape instead of failing.
"""

import numpy as np
import pytest

from repro.core import KGAGTrainer
from repro.nn import Tensor, install_tape_hooks, ops, uninstall_tape_hooks

from .conftest import build_model


def _fit(small_dataset, small_split, config, *, compile, cls=KGAGTrainer, **kw):
    model = build_model(small_dataset, config)
    trainer = cls(
        model, small_split.train, small_dataset.user_item, compile=compile, **kw
    )
    history = trainer.fit()
    return trainer, history


def _assert_same_run(small_dataset, small_split, config):
    dynamic, dyn_history = _fit(small_dataset, small_split, config, compile=False)
    compiled, cmp_history = _fit(small_dataset, small_split, config, compile=True)
    assert cmp_history.losses == dyn_history.losses
    for (name, a), (_, b) in zip(
        dynamic.model.named_parameters(), compiled.model.named_parameters()
    ):
        np.testing.assert_array_equal(a.data, b.data, err_msg=name)
    return compiled


class _NullHooks:
    def on_make(self, data, parents, backward):
        pass

    def on_accumulate(self, tensor, grad):
        pass


class _UncompilableTrainer(KGAGTrainer):
    """Injects ``ops.where`` (outside the compiled set) into the loss."""

    def _planned_loss(self, plan):
        loss = super()._planned_loss(plan)
        gate = ops.where(Tensor(np.array(True)), loss, loss * 0.0)
        return gate


class TestCompiledMatchesDynamic:
    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"aggregator": "graphsage"},
            {"loss": "bpr"},
            {"loss": "margin_raw"},
            {"uniform_neighbor_weights": True},
            {"num_layers": 0},
            {"num_layers": 2},
            {"pi_pooling": "mean"},
            {"max_grad_norm": 1.0},
        ],
        ids=lambda o: ",".join(f"{k}={v}" for k, v in o.items()) or "default",
    )
    def test_config_matrix_bit_exact(
        self, small_dataset, small_split, fast_config, overrides
    ):
        config = fast_config.with_overrides(epochs=2, batch_size=32, **overrides)
        compiled = _assert_same_run(small_dataset, small_split, config)
        assert compiled.compile_stats["traces"] >= 1
        assert compiled.compile_stats["replays"] >= 1
        assert compiled.compile_stats["fallbacks"] == 0

    @pytest.mark.parametrize("ablate", ["ablate_kg", "ablate_sp", "ablate_pi"])
    def test_ablations_bit_exact(
        self, small_dataset, small_split, fast_config, ablate
    ):
        config = getattr(fast_config.with_overrides(epochs=2, batch_size=32), ablate)()
        compiled = _assert_same_run(small_dataset, small_split, config)
        assert compiled.compile_stats["fallbacks"] == 0


class TestFallbacks:
    def test_ragged_batches_trace_one_program_per_signature(
        self, small_dataset, small_split, fast_config
    ):
        # batch_size=16 leaves a ragged tail batch: a second signature.
        config = fast_config.with_overrides(epochs=3, batch_size=16)
        compiled = _assert_same_run(small_dataset, small_split, config)
        assert compiled.compile_stats["traces"] == len(compiled._programs) == 2
        assert compiled.compile_stats["fallbacks"] == 0

    def test_tape_hooks_force_dynamic_fallback(
        self, small_dataset, small_split, fast_config
    ):
        config = fast_config.with_overrides(epochs=2, batch_size=32)
        hooks = _NullHooks()
        install_tape_hooks(hooks)
        try:
            compiled, history = _fit(
                small_dataset, small_split, config, compile=True
            )
        finally:
            uninstall_tape_hooks(hooks)
        assert compiled.compile_stats["traces"] == 0
        assert compiled.compile_stats["replays"] == 0
        assert compiled.compile_stats["fallbacks"] > 0
        _, dyn_history = _fit(small_dataset, small_split, config, compile=False)
        assert history.losses == dyn_history.losses

    def test_sanitize_mode_forces_dynamic_fallback(
        self, small_dataset, small_split, fast_config
    ):
        config = fast_config.with_overrides(epochs=2, batch_size=32)
        compiled, history = _fit(
            small_dataset, small_split, config, compile=True, sanitize=True
        )
        assert compiled.compile_stats["replays"] == 0
        assert compiled.compile_stats["fallbacks"] > 0
        _, dyn_history = _fit(small_dataset, small_split, config, compile=False)
        assert history.losses == dyn_history.losses

    def test_unsupported_op_caches_failure_and_trains_dynamically(
        self, small_dataset, small_split, fast_config
    ):
        config = fast_config.with_overrides(epochs=2, batch_size=32)
        compiled, history = _fit(
            small_dataset, small_split, config, compile=True, cls=_UncompilableTrainer
        )
        assert compiled.compile_stats["traces"] == 0
        assert compiled.compile_stats["replays"] == 0
        assert compiled.compile_stats["fallbacks"] > 0
        dynamic, dyn_history = _fit(
            small_dataset, small_split, config, compile=False, cls=_UncompilableTrainer
        )
        assert history.losses == dyn_history.losses

    def test_metrics_counters_mirror_stats(
        self, small_dataset, small_split, fast_config
    ):
        config = fast_config.with_overrides(epochs=2, batch_size=32)
        model = build_model(small_dataset, config)
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        trainer = KGAGTrainer(
            model,
            small_split.train,
            small_dataset.user_item,
            compile=True,
            metrics=registry,
        )
        trainer.fit()
        snapshot = registry.snapshot()
        for key in ("traces", "replays", "fallbacks"):
            assert snapshot[f"compile/{key}"]["value"] == trainer.compile_stats[key]
