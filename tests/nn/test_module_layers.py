"""Unit tests for Module/Parameter plumbing and the standard layers."""

import numpy as np
import pytest

from repro.nn import (
    Activation,
    Dropout,
    Embedding,
    Linear,
    MLP,
    Module,
    Parameter,
    Sequential,
    Tensor,
)

RNG = np.random.default_rng(21)


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(3, 4, rng=RNG)
        self.second = Linear(4, 2, rng=RNG)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.second(self.first(x).relu()) * self.scale


class TestModule:
    def test_parameter_discovery(self):
        model = TwoLayer()
        names = {name for name, _ in model.named_parameters()}
        assert names == {
            "first.weight",
            "first.bias",
            "second.weight",
            "second.bias",
            "scale",
        }

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 1

    def test_reassigning_parameter_drops_stale_registration(self):
        # Regression: a ghost entry in _parameters survived reassignment,
        # so the optimizer and state_dict kept training/saving the orphan.
        model = TwoLayer()
        model.scale = "not a parameter anymore"
        names = {name for name, _ in model.named_parameters()}
        assert "scale" not in names
        assert "scale" not in model.state_dict()

    def test_reassigning_module_drops_stale_registration(self):
        model = TwoLayer()
        model.second = None
        names = {name for name, _ in model.named_parameters()}
        assert names == {"first.weight", "first.bias", "scale"}
        assert all(not name.startswith("second.") for name in model.state_dict())

    def test_reassigning_parameter_to_module_swaps_registry(self):
        model = TwoLayer()
        model.scale = Linear(2, 2, rng=RNG)
        names = {name for name, _ in model.named_parameters()}
        assert "scale" not in names
        assert {"scale.weight", "scale.bias"} <= names

    def test_reassigning_module_to_parameter_swaps_registry(self):
        model = TwoLayer()
        model.second = Parameter(np.ones(2))
        names = {name for name, _ in model.named_parameters()}
        assert "second" in names
        assert all(not name.startswith("second.") for name in names)

    def test_replacing_parameter_trains_the_new_one(self):
        model = TwoLayer()
        replacement = Parameter(np.full(1, 2.0))
        model.scale = replacement
        assert dict(model.named_parameters())["scale"] is replacement

    def test_zero_grad_clears_all(self):
        model = TwoLayer()
        out = model(Tensor(RNG.normal(size=(2, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2, rng=RNG), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self):
        model = TwoLayer()
        state = model.state_dict()
        other = TwoLayer()
        other.load_state_dict(state)
        for (_, p), (_, q) in zip(model.named_parameters(), other.named_parameters()):
            np.testing.assert_allclose(p.data, q.data)

    def test_state_dict_is_a_copy(self):
        model = TwoLayer()
        state = model.state_dict()
        state["scale"][0] = 123.0
        assert model.scale.data[0] == 1.0

    def test_load_state_dict_strict(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_shape_check(self):
        model = TwoLayer()
        state = model.state_dict()
        state["scale"] = np.ones(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(3, 5, rng=RNG)
        assert layer(Tensor(RNG.normal(size=(7, 3)))).shape == (7, 5)

    def test_no_bias(self):
        layer = Linear(3, 5, bias=False, rng=RNG)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 3))))
        np.testing.assert_allclose(out.data, np.zeros((1, 5)))

    def test_matches_manual_affine(self):
        layer = Linear(2, 2, rng=RNG)
        x = RNG.normal(size=(4, 2))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_gradients_flow(self):
        layer = Linear(3, 1, rng=RNG)
        layer(Tensor(RNG.normal(size=(5, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=RNG)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_lookup_values(self):
        emb = Embedding(5, 3, rng=RNG)
        np.testing.assert_allclose(emb(np.array([2])).data[0], emb.weight.data[2])

    def test_out_of_range_raises(self):
        emb = Embedding(5, 3, rng=RNG)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_float_indices_rejected(self):
        emb = Embedding(5, 3, rng=RNG)
        with pytest.raises(TypeError):
            emb(np.array([1.0]))

    def test_repeated_rows_accumulate_grad(self):
        emb = Embedding(4, 2, rng=RNG)
        emb(np.array([1, 1, 1])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestDropout:
    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_eval_mode_is_identity(self):
        layer = Dropout(0.9, rng=RNG)
        layer.eval()
        x = Tensor(RNG.normal(size=(10, 10)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_train_mode_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((1000,)))
        out = layer(x).data
        zeros = (out == 0).mean()
        assert 0.35 < zeros < 0.65  # roughly p
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling 1/(1-p)

    def test_p_zero_identity_in_train(self):
        layer = Dropout(0.0)
        x = Tensor(np.ones(5))
        assert layer(x) is x


class TestContainers:
    def test_sequential_order(self):
        model = Sequential(Linear(2, 3, rng=RNG), Activation("relu"), Linear(3, 1, rng=RNG))
        assert len(model) == 3
        out = model(Tensor(RNG.normal(size=(4, 2))))
        assert out.shape == (4, 1)

    def test_activation_unknown(self):
        with pytest.raises(ValueError):
            Activation("swishish")

    def test_mlp_shapes(self):
        mlp = MLP([6, 4, 2], rng=RNG)
        assert mlp(Tensor(RNG.normal(size=(3, 6)))).shape == (3, 2)

    def test_mlp_needs_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_mlp_final_activation(self):
        mlp = MLP([3, 2], final_activation="sigmoid", rng=RNG)
        out = mlp(Tensor(RNG.normal(size=(10, 3)))).data
        assert (out > 0).all() and (out < 1).all()
