"""Unit tests for ranking metrics (Sec. IV-C)."""

import numpy as np
import pytest

from repro.eval import (
    evaluate_rankings,
    hit_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    top_k_items,
)


class TestTopK:
    def test_orders_descending(self):
        scores = np.array([0.1, 0.9, 0.5])
        np.testing.assert_array_equal(top_k_items(scores, 2), [1, 2])

    def test_ties_break_by_item_id(self):
        scores = np.array([0.5, 0.5, 0.5])
        np.testing.assert_array_equal(top_k_items(scores, 3), [0, 1, 2])

    def test_k_larger_than_items(self):
        assert len(top_k_items(np.array([1.0, 2.0]), 10)) == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_items(np.array([1.0]), 0)

    def test_neg_inf_ranks_last(self):
        scores = np.array([-np.inf, 0.0, 1.0])
        np.testing.assert_array_equal(top_k_items(scores, 3), [2, 1, 0])


class TestHit:
    def test_hit_when_positive_in_topk(self):
        scores = np.array([0.9, 0.1, 0.5])
        assert hit_at_k(scores, {0}, 1) == 1.0

    def test_miss_when_positive_outside_topk(self):
        scores = np.array([0.9, 0.1, 0.5])
        assert hit_at_k(scores, {1}, 2) == 0.0

    def test_no_positives_is_miss(self):
        assert hit_at_k(np.array([1.0]), set(), 1) == 0.0


class TestRecall:
    def test_full_recall(self):
        scores = np.array([0.9, 0.8, 0.1])
        assert recall_at_k(scores, {0, 1}, 2) == 1.0

    def test_partial_recall(self):
        scores = np.array([0.9, 0.1, 0.8])
        assert recall_at_k(scores, {0, 1}, 2) == 0.5

    def test_recall_capped_by_k(self):
        # 3 positives, k=1: at best 1/3.
        scores = np.array([0.9, 0.8, 0.7])
        assert recall_at_k(scores, {0, 1, 2}, 1) == pytest.approx(1 / 3)


class TestPrecisionNdcg:
    def test_precision(self):
        scores = np.array([0.9, 0.8, 0.1])
        assert precision_at_k(scores, {0}, 2) == 0.5

    def test_ndcg_perfect_ranking(self):
        scores = np.array([0.9, 0.8, 0.1, 0.05])
        assert ndcg_at_k(scores, {0, 1}, 2) == pytest.approx(1.0)

    def test_ndcg_worst_in_topk(self):
        # positive at rank 2 (0-indexed 1) vs ideal rank 0.
        scores = np.array([0.9, 0.8])
        value = ndcg_at_k(scores, {1}, 2)
        assert value == pytest.approx((1 / np.log2(3)) / 1.0)

    def test_ndcg_empty_positives(self):
        assert ndcg_at_k(np.array([1.0]), set(), 1) == 0.0


class TestAggregate:
    def test_averages_over_groups(self):
        scores = {0: np.array([0.9, 0.1]), 1: np.array([0.1, 0.9])}
        positives = {0: [0], 1: [0]}  # group 0 hit, group 1 miss at k=1
        out = evaluate_rankings(scores, positives, k=1)
        assert out["hit@1"] == 0.5
        assert out["rec@1"] == 0.5
        assert out["num_groups"] == 2

    def test_groups_without_positives_skipped(self):
        scores = {0: np.array([1.0, 0.0]), 1: np.array([1.0, 0.0])}
        positives = {0: [0], 1: []}
        out = evaluate_rankings(scores, positives, k=1)
        assert out["num_groups"] == 1

    def test_all_empty_raises(self):
        with pytest.raises(ValueError):
            evaluate_rankings({0: np.array([1.0])}, {0: []}, k=1)

    def test_rec_equals_hit_with_single_positives(self):
        """The Yelp phenomenon of Table II: one positive per group makes
        rec@k and hit@k identical."""
        rng = np.random.default_rng(0)
        scores = {g: rng.normal(size=20) for g in range(10)}
        positives = {g: [int(rng.integers(20))] for g in range(10)}
        out = evaluate_rankings(scores, positives, k=5)
        assert out["hit@5"] == out["rec@5"]
