"""DeltaBatch schema, JSONL round-trips, and apply_delta id bookkeeping."""

import numpy as np
import pytest

from repro.stream import (
    DeltaBatch,
    DeltaError,
    apply_delta,
    read_delta_jsonl,
    write_delta_jsonl,
)


def _records():
    return [
        {"op": "add_user", "count": 2},
        {"op": "add_item", "name": "fresh-movie"},
        {"op": "add_entity", "name": "fresh-genre"},
        {"op": "add_relation", "name": "remake_of"},
        {"op": "add_edge", "head": "item:30", "relation": 0, "tail": "attr:1"},
        {"op": "add_edge", "head": "item:30", "relation": 5, "tail": "attr:6"},
        {"op": "add_interaction", "user": 24, "item": 30},
        {"op": "add_group", "members": [0, 1, 2, 3, 4, 5, 6, 24]},
        {"op": "add_group_interaction", "group": 6, "item": 2},
    ]


class TestDeltaBatch:
    def test_from_records_counts(self):
        delta = DeltaBatch.from_records(_records())
        assert delta.num_new_users == 2
        assert delta.num_new_items == 1
        assert delta.num_new_entities == 1
        assert delta.num_new_relations == 1
        assert delta.num_new_groups == 1
        assert delta.item_names == ("fresh-movie",)
        assert delta.edges[0] == (("item", 30), 0, ("attr", 1))
        assert delta.interactions == ((24, 30),)
        assert delta.group_interactions == ((6, 2),)
        assert not delta.is_empty

    def test_empty_batch(self):
        delta = DeltaBatch.from_records([])
        assert delta.is_empty
        assert delta.describe()["new_items"] == 0

    def test_record_roundtrip(self):
        delta = DeltaBatch.from_records(_records())
        assert DeltaBatch.from_records(delta.to_records()) == delta

    def test_jsonl_roundtrip(self, tmp_path):
        delta = DeltaBatch.from_records(_records())
        path = write_delta_jsonl(delta, tmp_path / "feed.jsonl")
        assert read_delta_jsonl(path) == delta

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('\n{"op": "add_user"}\n\n')
        assert read_delta_jsonl(path).num_new_users == 1

    @pytest.mark.parametrize(
        "record",
        [
            {"op": "drop_item"},
            {"op": "add_item", "count": 0},
            {"op": "add_item", "count": 2, "name": "x"},
            {"op": "add_edge", "head": "node:1", "relation": 0, "tail": "attr:0"},
            {"op": "add_edge", "head": "item:x", "relation": 0, "tail": "attr:0"},
            {"op": "add_edge", "head": "item:1", "relation": -1, "tail": "attr:0"},
            {"op": "add_interaction", "user": -1, "item": 0},
            {"op": "add_interaction", "user": 0, "item": True},
            {"op": "add_group", "members": [7]},
            {"op": "add_group", "members": [1, 1, 2]},
            "not-a-dict",
        ],
    )
    def test_malformed_records_raise(self, record):
        with pytest.raises(DeltaError):
            DeltaBatch.from_records([record])

    def test_invalid_json_names_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"op": "add_user"}\n{oops\n')
        with pytest.raises(DeltaError, match="bad.jsonl:2"):
            read_delta_jsonl(path)


class TestApplyDelta:
    def _delta(self, dataset):
        group_size = dataset.groups.group_size
        return DeltaBatch.from_records(
            [
                {"op": "add_user"},
                {"op": "add_item", "name": "cold-item"},
                {"op": "add_entity"},
                {"op": "add_relation", "name": "remake_of"},
                {
                    "op": "add_edge",
                    "head": f"item:{dataset.num_items}",
                    "relation": 0,
                    "tail": "attr:0",
                },
                {
                    "op": "add_edge",
                    "head": f"item:{dataset.num_items}",
                    "relation": dataset.kg.num_relations,
                    "tail": "attr:" + str(dataset.kg.num_entities - dataset.num_items),
                },
                {"op": "add_interaction", "user": dataset.num_users, "item": 0},
                {"op": "add_group", "members": list(range(group_size))},
                {
                    "op": "add_group_interaction",
                    "group": dataset.groups.num_groups,
                    "item": dataset.num_items,
                },
            ]
        )

    def test_growth_counts(self, dataset):
        grown, plan = apply_delta(dataset, self._delta(dataset))
        assert grown.num_users == dataset.num_users + 1
        assert grown.num_items == dataset.num_items + 1
        assert grown.kg.num_entities == dataset.kg.num_entities + 2
        assert grown.kg.num_relations == dataset.kg.num_relations + 1
        assert grown.groups.num_groups == dataset.groups.num_groups + 1
        assert not plan.is_identity
        assert plan.describe()["items"] == [dataset.num_items, dataset.num_items + 1]

    def test_old_triples_survive_remapped(self, dataset):
        grown, plan = apply_delta(dataset, self._delta(dataset))
        remap = plan.kg_entity_remap
        old = dataset.kg.triples
        expected = old.copy()
        expected[:, 0] = remap[expected[:, 0]]
        expected[:, 2] = remap[expected[:, 2]]
        grown_set = {tuple(t) for t in grown.kg.triples}
        assert all(tuple(t) in grown_set for t in expected)

    def test_item_ids_are_stable(self, dataset):
        _, plan = apply_delta(dataset, self._delta(dataset))
        items = np.arange(dataset.num_items)
        assert np.array_equal(plan.kg_entity_remap[items], items)
        # Old attribute entities shift up by exactly one new item.
        attrs = np.arange(dataset.num_items, dataset.kg.num_entities)
        assert np.array_equal(plan.kg_entity_remap[attrs], attrs + 1)

    def test_new_facts_present(self, dataset):
        grown, _ = apply_delta(dataset, self._delta(dataset))
        new_item = dataset.num_items  # entity id == item id (identity map)
        first_attr_new = dataset.num_items + 1  # old attr 0, shifted by 1
        assert (new_item, 0, first_attr_new) in grown.kg
        assert grown.kg.entity_name(new_item) == "cold-item"
        assert grown.kg.relation_name(dataset.kg.num_relations) == "remake_of"
        assert [dataset.num_users, 0] in grown.user_item.pairs.tolist()
        assert [
            dataset.groups.num_groups,
            dataset.num_items,
        ] in grown.group_item.pairs.tolist()

    def test_input_dataset_untouched(self, dataset):
        before = dataset.kg.num_triples
        apply_delta(dataset, self._delta(dataset))
        assert dataset.kg.num_triples == before
        assert dataset.num_items == 30

    def test_identity_plan_for_empty_delta(self, dataset):
        grown, plan = apply_delta(dataset, DeltaBatch())
        assert plan.is_identity
        assert grown.num_items == dataset.num_items
        assert np.array_equal(grown.kg.triples, dataset.kg.triples)

    @pytest.mark.parametrize(
        "records",
        [
            [{"op": "add_edge", "head": "item:999", "relation": 0, "tail": "attr:0"}],
            [{"op": "add_edge", "head": "item:0", "relation": 99, "tail": "attr:0"}],
            [{"op": "add_edge", "head": "item:0", "relation": 0, "tail": "attr:999"}],
            [{"op": "add_interaction", "user": 999, "item": 0}],
            [{"op": "add_interaction", "user": 0, "item": 999}],
            [{"op": "add_group", "members": [0, 999, 1, 2, 3, 4, 5, 6]}],
            [{"op": "add_group_interaction", "group": 99, "item": 0}],
            [{"op": "add_group", "members": [0, 1]}],  # wrong group size
        ],
    )
    def test_out_of_range_references_raise(self, dataset, records):
        with pytest.raises(DeltaError):
            apply_delta(dataset, DeltaBatch.from_records(records))


class TestGrowthPlan:
    def test_derived_remaps(self, dataset):
        delta = DeltaBatch.from_records(
            [{"op": "add_item"}, {"op": "add_relation"}, {"op": "add_user"}]
        )
        _, plan = apply_delta(dataset, delta)
        ckg_remap = plan.ckg_entity_remap()
        # Users ride after the KG block: shifted by the new KG entities.
        user_zero_old = dataset.kg.num_entities
        assert ckg_remap[user_zero_old] == plan.new_kg_entities
        # Interact + self-loop slots shift by the one new relation.
        slots = plan.relation_slot_remap()
        old_r = dataset.kg.num_relations
        assert slots[old_r] == old_r + 1  # Interact slot
        assert slots[old_r + 1] == old_r + 2  # self-loop slot
        assert len(np.unique(ckg_remap)) == len(ckg_remap)
        # New rows are exactly the ids no old row landed on.
        new_rows = plan.new_entity_rows()
        assert len(new_rows) == plan.new_ckg_entities - plan.old_ckg_entities
        assert not np.intersect1d(new_rows, ckg_remap).size
