"""Experiment profiles: how much compute a harness run spends.

The paper's experiments train 8 models x 3 datasets (plus sweeps) on a
GPU; this CPU reproduction exposes three profiles:

* ``quick``   — smallest datasets / few epochs / 1 seed.  Smoke-level:
  every harness runs in seconds-to-a-minute; orderings are noisy.
* ``default`` — the calibrated reproduction scale: datasets big enough
  that the paper's orderings hold on seed-averages, still CPU-friendly.
* ``full``    — larger datasets and more seeds for tighter error bars
  (expect roughly an hour for Table II).

Every experiment module accepts a profile name on its CLI
(``python -m repro.experiments.table2_overall --profile quick``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.config import KGAGConfig
from ..data.synthetic import MovieLensLikeConfig, YelpLikeConfig

__all__ = ["ExperimentProfile", "get_profile", "PROFILES"]


@dataclass
class ExperimentProfile:
    """Datasets + model budget + seeds for one harness run."""

    name: str
    movielens: MovieLensLikeConfig
    yelp: YelpLikeConfig
    model: KGAGConfig
    seeds: tuple[int, ...] = (0, 1, 2)
    k: int = 5

    def movielens_for_seed(self, seed: int) -> MovieLensLikeConfig:
        return replace(self.movielens, seed=seed)

    def yelp_for_seed(self, seed: int) -> YelpLikeConfig:
        return replace(self.yelp, seed=seed)

    def model_for_seed(self, seed: int) -> KGAGConfig:
        return self.model.with_overrides(seed=seed)


def _quick() -> ExperimentProfile:
    return ExperimentProfile(
        name="quick",
        movielens=MovieLensLikeConfig(num_users=60, num_items=60, num_groups=30),
        yelp=YelpLikeConfig(num_users=40, num_items=30, num_groups=20),
        model=KGAGConfig(
            embedding_dim=16,
            num_layers=1,
            num_neighbors=4,
            epochs=6,
            batch_size=128,
            patience=0,
            learning_rate=0.01,
        ),
        seeds=(0,),
    )


def _default() -> ExperimentProfile:
    return ExperimentProfile(
        name="default",
        movielens=MovieLensLikeConfig(),
        yelp=YelpLikeConfig(),
        model=KGAGConfig(
            embedding_dim=32,
            num_layers=2,
            num_neighbors=4,
            epochs=40,
            batch_size=128,
            patience=8,
            learning_rate=0.005,
        ),
        seeds=(0, 1, 2),
    )


def _full() -> ExperimentProfile:
    return ExperimentProfile(
        name="full",
        movielens=MovieLensLikeConfig(num_users=150, num_items=150, num_groups=120),
        yelp=YelpLikeConfig(num_users=120, num_items=90, num_groups=80),
        model=KGAGConfig(
            embedding_dim=32,
            num_layers=2,
            num_neighbors=4,
            epochs=40,
            batch_size=256,
            patience=8,
            learning_rate=0.005,
        ),
        seeds=(0, 1, 2, 3, 4),
    )


PROFILES = {"quick": _quick, "default": _default, "full": _full}


def get_profile(name: str) -> ExperimentProfile:
    """Look up a profile by name."""
    if name not in PROFILES:
        raise ValueError(f"unknown profile {name!r}; choices: {sorted(PROFILES)}")
    return PROFILES[name]()
