"""``repro.data`` — interaction data, group construction, synthetic datasets.

Implements the data side of the paper's Sec. III-A / IV-B: user-item and
group-item interaction tables, explicit ratings, the three group
construction protocols (random, PCC-similarity, friend co-visit), the
60/20/20 split, negative sampling, mixed mini-batch loading, and the
latent-topic synthetic generators replacing MovieLens-20M and Yelp.
"""

from .interactions import InteractionTable, RatingsTable
from .similarity import pearson_correlation, pairwise_pearson, mean_group_similarity
from .groups import (
    GroupSet,
    random_groups,
    similarity_groups,
    covisit_groups,
    group_positive_items,
)
from .splits import Split, split_interactions
from .negative import NegativeSampler
from .loader import MixedBatch, MixedBatchLoader, iterate_minibatches
from .synthetic import (
    LatentWorld,
    WorldConfig,
    sample_world,
    sample_ratings,
    GroupRecommendationDataset,
    MovieLensLikeConfig,
    movielens_like,
    YelpLikeConfig,
    yelp_like,
)

__all__ = [
    "InteractionTable",
    "RatingsTable",
    "pearson_correlation",
    "pairwise_pearson",
    "mean_group_similarity",
    "GroupSet",
    "random_groups",
    "similarity_groups",
    "covisit_groups",
    "group_positive_items",
    "Split",
    "split_interactions",
    "NegativeSampler",
    "MixedBatch",
    "MixedBatchLoader",
    "iterate_minibatches",
    "LatentWorld",
    "WorldConfig",
    "sample_world",
    "sample_ratings",
    "GroupRecommendationDataset",
    "MovieLensLikeConfig",
    "movielens_like",
    "YelpLikeConfig",
    "yelp_like",
]
