"""``repro.kg`` — knowledge graph substrate.

Provides the triple store (:class:`KnowledgeGraph`), the collaborative KG
construction of Sec. III-A (:class:`CollaborativeKnowledgeGraph`), fixed-K
neighbor sampling for dense batched propagation (:class:`NeighborSampler`),
and synthetic KG generators replacing Microsoft Satori / the Yelp business
graph (see DESIGN.md §1).
"""

from .graph import KnowledgeGraph, Triple
from .collaborative import (
    CollaborativeKnowledgeGraph,
    ItemEntityMap,
    build_collaborative_graph,
)
from .sampling import NeighborSampler, ReceptiveField
from .generators import TopicalKGConfig, topical_kg, random_kg, chain_kg, star_kg

__all__ = [
    "KnowledgeGraph",
    "Triple",
    "CollaborativeKnowledgeGraph",
    "ItemEntityMap",
    "build_collaborative_graph",
    "NeighborSampler",
    "ReceptiveField",
    "TopicalKGConfig",
    "topical_kg",
    "random_kg",
    "chain_kg",
    "star_kg",
]
